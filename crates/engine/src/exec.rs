//! The Executor layer: one seam for local, child-process, and remote
//! shard execution — with merge-as-they-arrive streaming.
//!
//! PR 3 made shard partials a wire format and PR 4 gave the service a
//! streaming driver; this module is the piece that lets **one
//! coordinator drive many workers** without giving up the bit-identity
//! contract. Everything that used to be a bespoke driver (the CLI's
//! `--spawn` launcher, an in-process sharded run, a hand-rolled remote
//! fan-out) is now an implementation of one trait:
//!
//! - [`Executor`] — "run all `k` shards of this spec, hand me each
//!   [`PartialReport`] as it completes, in whatever order they finish."
//! - [`LocalExecutor`] — today's in-process threaded path: prepares the
//!   scenario **once** (training comes from the shared
//!   [`ContextCache`] — the pre-warm lives at this seam now) and runs
//!   every slice on its own thread.
//! - [`SpawnExecutor`] — the `spnn run --shards k --spawn` child-process
//!   launcher, moved out of the CLI into the library: canonical spec
//!   text in a scratch directory, cache pre-warmed by the parent, cores
//!   split across children.
//! - [`RemoteExecutor`] — `POST`s the canonical spec text plus the shard
//!   coordinates to worker `spnn serve` instances
//!   (`POST /shard?shards=k&index=i`, see [`crate::serve`]) over the
//!   dependency-free HTTP client in [`crate::http`]. A worker that
//!   fails — refused connection, mid-run crash, torn response — is
//!   retried on the next worker; the shard planner is deterministic, so
//!   any worker can recompute any slice. It is also the **fleet**
//!   executor: [`RemoteExecutor::with_local_peers`] adds in-process
//!   peers to the same plan (mixed dispatch),
//!   [`RemoteExecutor::with_weights`] slices the round space
//!   proportionally to measured capacity (see [`WeightSource`]), and
//!   [`RemoteExecutor::with_steal`] re-dispatches the slowest
//!   outstanding slice (sub-sliced as `POST /shard?span=LO-HI`) when a
//!   peer drains its own — speculative overlaps are deduplicated by the
//!   merge, so the assembled report stays byte-identical.
//!
//! [`run_distributed`] is the single driver on top: it feeds arriving
//! partials into the incremental [`MergeState`] and emits the engine's
//! usual [`StreamEvent`]s the moment a row's coverage is decidable —
//! rows stream in prefix order from whichever shard finishes first, and
//! the finalized report is byte-identical to the unsharded
//! [`crate::run_scenario_with`] run (CI-gated, like every other
//! execution path).
//!
//! Cancellation is cooperative: every long operation polls a
//! [`CancelToken`], and every token also observes the process-wide
//! shutdown flag raised by [`install_signal_handlers`] — so one SIGTERM
//! to a coordinator stops new dispatches and abandons outstanding
//! remote shards (workers finish their slices and find nobody reading;
//! their own lifecycle is independent).

use crate::cache::ContextCache;
use crate::http::{self, FetchResponse};
use crate::metrics::{self, MetricsRegistry, Reading};
use crate::rowcache::{RowContext, RowManifest};
use crate::runner::{
    execute_blocks, execute_shard_blocks, prepare, replay_cached_scenario, EngineConfig,
    EngineError, EngineReport, StreamEvent,
};
use crate::shard::{
    plan_span, queue_fingerprint_with, weighted_span, MergeError, MergeState, PartialReport,
};
use crate::spec::ScenarioSpec;
use crate::tevent;
use crate::trace::Level;
use spnn_core::KernelProfile;
use std::collections::VecDeque;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

/// The process-wide shutdown flag, set by the signal handler installed
/// with [`install_signal_handlers`]. Observed by every [`CancelToken`].
static PROCESS_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// `true` once SIGTERM/SIGINT has been received (after
/// [`install_signal_handlers`]).
pub fn process_shutdown_requested() -> bool {
    PROCESS_SHUTDOWN.load(Ordering::Relaxed)
}

#[cfg(unix)]
mod signals {
    use super::PROCESS_SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn _exit(code: i32) -> !;
    }

    /// Async-signal-safe by construction: one atomic store, or `_exit`
    /// on the second signal (an operator pressing Ctrl-C twice means
    /// *now*).
    extern "C" fn on_shutdown_signal(_signum: i32) {
        if PROCESS_SHUTDOWN.swap(true, Ordering::Relaxed) {
            unsafe { _exit(130) }
        }
    }

    pub fn install() -> bool {
        const SIG_ERR: usize = usize::MAX;
        let handler = on_shutdown_signal as extern "C" fn(i32) as usize;
        // SAFETY: registering an async-signal-safe handler for two
        // standard termination signals.
        unsafe { signal(SIGTERM, handler) != SIG_ERR && signal(SIGINT, handler) != SIG_ERR }
    }
}

/// Installs SIGTERM/SIGINT handlers that request a graceful shutdown:
/// the first signal sets the process-wide flag every [`CancelToken`]
/// observes (`spnn serve` stops accepting, finishes in-flight local
/// streams, cancels outstanding remote shards, then exits); a second
/// signal exits immediately with status 130.
///
/// Returns `false` when handlers could not be installed (non-Unix
/// platforms, or a hostile environment) — the process then keeps the
/// default terminate-on-signal behavior.
pub fn install_signal_handlers() -> bool {
    #[cfg(unix)]
    {
        signals::install()
    }
    #[cfg(not(unix))]
    {
        false
    }
}

/// A shareable, cloneable cancellation flag.
///
/// [`CancelToken::is_cancelled`] reports `true` once
/// [`cancel`](CancelToken::cancel) was called on this token (or any clone), *or*
/// once any ancestor token (see [`CancelToken::child`]) was cancelled, *or*
/// once the process-wide shutdown flag was raised by a signal (see
/// [`install_signal_handlers`]) — so code polling a token automatically
/// participates in graceful shutdown.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    /// Cancellation flows down a parent chain, never up: cancelling a
    /// child (e.g. one over-budget request) leaves the parent (the
    /// server) running.
    parent: Option<Box<CancelToken>>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// A child token that observes this token's cancellation in addition
    /// to its own — the seam for per-request aborts: the server cancels
    /// one request's child token (budget violation) without touching its
    /// own, while a server shutdown still cancels every child.
    pub fn child(&self) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            parent: Some(Box::new(self.clone())),
        }
    }

    /// Requests cancellation on this token and all its clones (and, via
    /// the parent chain, all its children — but never its ancestors).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// `true` once cancelled — directly, via an ancestor, or via process
    /// shutdown.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
            || self.parent.as_ref().is_some_and(|p| p.is_cancelled())
            || process_shutdown_requested()
    }
}

// ---------------------------------------------------------------------------
// The Executor seam
// ---------------------------------------------------------------------------

/// Shared context an [`Executor`] runs under: execution knobs, the
/// trained-context cache, and the cancellation token.
#[derive(Debug, Clone, Copy)]
pub struct ExecContext<'a> {
    /// Execution knobs (threads, verbosity, cache directory) — like
    /// everywhere else in the engine, nothing here may change results.
    pub config: &'a EngineConfig,
    /// The trained-context cache. [`LocalExecutor`] trains/loads through
    /// it once before fan-out; [`SpawnExecutor`] pre-warms it so child
    /// processes all load instead of training `k` times; workers reached
    /// by [`RemoteExecutor`] have their own.
    pub cache: &'a ContextCache,
    /// Cooperative cancellation (see [`CancelToken`]).
    pub cancel: &'a CancelToken,
}

/// Why an executor could not produce every shard.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExecError {
    /// Scenario preparation failed (validation, mapping) before any
    /// shard ran.
    Engine(EngineError),
    /// A child process could not be launched, exited non-zero, or wrote
    /// an unreadable partial.
    Spawn(String),
    /// A shard could not be computed by any worker.
    Remote(String),
    /// Execution was cancelled before every shard completed.
    Cancelled,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Engine(e) => write!(f, "{e}"),
            ExecError::Spawn(m) => write!(f, "shard process failed: {m}"),
            ExecError::Remote(m) => write!(f, "remote execution failed: {m}"),
            ExecError::Cancelled => write!(f, "execution cancelled"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<EngineError> for ExecError {
    fn from(e: EngineError) -> Self {
        ExecError::Engine(e)
    }
}

/// A strategy for executing every shard of a `k`-way split of one
/// scenario.
///
/// Implementations must deliver each shard's [`PartialReport`] to
/// `deliver` **as it completes**, in any order, from the calling thread
/// (the driver feeds them straight into [`MergeState`], which is how
/// merge-as-they-arrive streaming falls out). Returning `Ok(())`
/// promises every shard `0..shards` was delivered exactly once.
///
/// `deliver` returns `false` when the consumer rejected the partial
/// (e.g. it does not merge) — the executor should stop wasting work
/// where it can, and preserve any on-disk artifacts it would normally
/// clean up, so the operator can inspect what was produced.
pub trait Executor {
    /// A short human-readable name for logs (`local`, `spawn`, `remote`).
    fn name(&self) -> &'static str;

    /// Executes shards `0..shards` of `spec`, delivering each partial as
    /// it completes.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] when any shard could not be produced;
    /// partials already delivered may have been handed out before the
    /// failure surfaced.
    fn execute(
        &self,
        spec: &ScenarioSpec,
        shards: usize,
        ctx: &ExecContext<'_>,
        deliver: &mut dyn FnMut(PartialReport) -> bool,
    ) -> Result<(), ExecError>;
}

impl fmt::Debug for dyn Executor + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Executor({})", self.name())
    }
}

/// Splits the machine's cores across `shards` concurrent slices unless
/// the operator pinned a thread count (identical results either way).
fn threads_per_shard(config: &EngineConfig, shards: usize) -> Option<usize> {
    config.threads.or_else(|| {
        std::thread::available_parallelism()
            .ok()
            .map(|n| (n.get() / shards.max(1)).max(1))
    })
}

// ---------------------------------------------------------------------------
// LocalExecutor
// ---------------------------------------------------------------------------

/// In-process execution: prepares the scenario once (one training/cache
/// load, one queue compilation) and runs every shard slice on its own
/// thread — the executor form of the engine's original threaded path.
///
/// With `shards == 1` this is exactly `spnn run`'s single-process
/// behavior routed through the shard+merge machinery; the merged report
/// is byte-identical either way (pinned by tests).
#[derive(Debug, Clone, Default)]
pub struct LocalExecutor;

impl Executor for LocalExecutor {
    fn name(&self) -> &'static str {
        "local"
    }

    fn execute(
        &self,
        spec: &ScenarioSpec,
        shards: usize,
        ctx: &ExecContext<'_>,
        deliver: &mut dyn FnMut(PartialReport) -> bool,
    ) -> Result<(), ExecError> {
        if ctx.cancel.is_cancelled() {
            return Err(ExecError::Cancelled);
        }
        // Prepare once: the trained context materializes here (cache or
        // fresh), before any fan-out — the pre-warm IS the preparation.
        let prep = prepare(spec, ctx.config, ctx.cache)?;
        let kernel = ctx.config.kernel;
        let fp = queue_fingerprint_with(spec, kernel);
        let threads = threads_per_shard(ctx.config, shards);
        let verbose = ctx.config.verbose;
        let cancelled = AtomicBool::new(false);
        let rctx = ctx
            .config
            .row_cache
            .as_ref()
            .map(|rc| (rc.as_ref(), RowContext::of_spec_with(spec, kernel)));

        let (tx, rx) = mpsc::channel::<PartialReport>();
        std::thread::scope(|scope| {
            for index in 0..shards {
                let tx = tx.clone();
                let prep = &prep;
                let fp = fp.clone();
                let cancelled = &cancelled;
                let cancel = ctx.cancel;
                let rctx = &rctx;
                scope.spawn(move || {
                    if cancel.is_cancelled() {
                        cancelled.store(true, Ordering::Relaxed);
                        return;
                    }
                    let registry = &ctx.config.metrics;
                    let partial = execute_shard_blocks(
                        prep,
                        fp,
                        kernel,
                        shards,
                        index,
                        threads,
                        verbose,
                        registry,
                        rctx.as_ref().map(|(rc, c)| (*rc, c)),
                    );
                    let _ = tx.send(partial);
                });
            }
            drop(tx);
            for partial in rx {
                let _ = deliver(partial);
            }
        });
        if cancelled.load(Ordering::Relaxed) {
            return Err(ExecError::Cancelled);
        }
        crate::runner::persist_context(ctx.cache, &prep, verbose);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// SpawnExecutor
// ---------------------------------------------------------------------------

/// Child-process execution: launches `spnn run --shards k --shard-index i`
/// once per shard on this machine and collects the partial files as the
/// children exit — the PR 4 `--spawn` launcher, now a library citizen.
///
/// Children run the **canonical** spec text (`ScenarioSpec::to_text`
/// round-trips exactly, so queue fingerprints match) from a scratch
/// directory; presets and env-scaled specs need no environment
/// agreement. When the shared cache has a persistence directory the
/// parent pre-warms it first, so `k` cold children all load the trained
/// context instead of training it `k` times concurrently.
#[derive(Debug, Clone)]
pub struct SpawnExecutor {
    /// Path to the `spnn` binary to launch (the CLI passes
    /// `std::env::current_exe()`).
    pub exe: PathBuf,
}

impl Executor for SpawnExecutor {
    fn name(&self) -> &'static str {
        "spawn"
    }

    fn execute(
        &self,
        spec: &ScenarioSpec,
        shards: usize,
        ctx: &ExecContext<'_>,
        deliver: &mut dyn FnMut(PartialReport) -> bool,
    ) -> Result<(), ExecError> {
        let verbose = ctx.config.verbose;
        let fp = queue_fingerprint_with(spec, ctx.config.kernel);
        let work_dir =
            std::env::temp_dir().join(format!("spnn-exec-{}-{}", std::process::id(), &fp[..12]));
        std::fs::create_dir_all(&work_dir)
            .map_err(|e| ExecError::Spawn(format!("creating {}: {e}", work_dir.display())))?;
        let spec_path = work_dir.join("scenario.scn");
        std::fs::write(&spec_path, spec.to_text())
            .map_err(|e| ExecError::Spawn(format!("writing {}: {e}", spec_path.display())))?;

        // Pre-warm the shared cache once in the parent (wall-clock only;
        // results are identical either way).
        if ctx.cache.dir().is_some() {
            let _ = ctx.cache.get_or_train(spec, verbose);
        }
        let threads = threads_per_shard(ctx.config, shards);

        let mut children: Vec<(usize, PathBuf, std::process::Child)> = Vec::with_capacity(shards);
        for index in 0..shards {
            if ctx.cancel.is_cancelled() {
                for (_, _, mut child) in children {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                return Err(ExecError::Cancelled);
            }
            let part = work_dir.join(format!("part-{index}.json"));
            let mut cmd = std::process::Command::new(&self.exe);
            cmd.arg("run")
                .arg(&spec_path)
                .arg("--shards")
                .arg(shards.to_string())
                .arg("--shard-index")
                .arg(index.to_string())
                .arg("--out")
                .arg(&part)
                .arg("--quiet")
                .stdout(std::process::Stdio::null());
            if !verbose {
                cmd.stderr(std::process::Stdio::null());
            }
            if let Some(t) = threads {
                cmd.arg("--threads").arg(t.to_string());
            }
            // Reference children keep the historical command line; only a
            // non-default profile is forwarded explicitly.
            if ctx.config.kernel != KernelProfile::Reference {
                cmd.arg("--kernel").arg(ctx.config.kernel.as_str());
            }
            match ctx.cache.dir() {
                Some(dir) => {
                    cmd.arg("--cache-dir").arg(dir);
                }
                None => {
                    cmd.arg("--no-cache");
                }
            }
            // Children can only share an on-disk row cache; an in-memory
            // tier (or none) in the parent means the children run cold.
            match ctx.config.row_cache.as_ref().and_then(|rc| rc.dir()) {
                Some(dir) => {
                    cmd.arg("--row-cache-dir").arg(dir);
                }
                None => {
                    cmd.arg("--no-row-cache");
                }
            }
            match cmd.spawn() {
                Ok(child) => {
                    if verbose {
                        eprintln!("[exec] spawned shard {index}/{shards} (pid {})", child.id());
                    }
                    children.push((index, part, child));
                }
                Err(e) => {
                    // Do not leave earlier shards orphaned.
                    for (_, _, mut child) in children {
                        let _ = child.kill();
                        let _ = child.wait();
                    }
                    return Err(ExecError::Spawn(format!("spawning shard {index}: {e}")));
                }
            }
        }

        // One waiter thread per child so partials are delivered in exit
        // order, not launch order.
        let (tx, rx) = mpsc::channel::<(usize, Result<PartialReport, String>)>();
        let mut failures = Vec::new();
        std::thread::scope(|scope| {
            for (index, part, mut child) in children {
                let tx = tx.clone();
                scope.spawn(move || {
                    let result = match child.wait() {
                        Ok(status) if status.success() => match std::fs::read_to_string(&part) {
                            Ok(text) => PartialReport::parse(&text).map_err(|e| format!("{e}")),
                            Err(e) => Err(format!("reading {}: {e}", part.display())),
                        },
                        Ok(status) => Err(format!("exited with {status}")),
                        Err(e) => Err(format!("waiting: {e}")),
                    };
                    let _ = tx.send((index, result));
                });
            }
            drop(tx);
            for (index, result) in rx {
                match result {
                    Ok(partial) => {
                        if !deliver(partial) {
                            // The consumer rejected this partial (it does
                            // not merge): keep the scratch files for
                            // post-mortem instead of treating the run as
                            // clean.
                            failures.push(format!("shard {index}: rejected by the merge"));
                        }
                    }
                    Err(e) => failures.push(format!("shard {index}: {e}")),
                }
            }
        });

        if failures.is_empty() {
            let _ = std::fs::remove_dir_all(&work_dir);
            Ok(())
        } else {
            failures.push(format!(
                "shard scratch kept for inspection: {}",
                work_dir.display()
            ));
            if verbose {
                // The caller may surface a more specific (e.g. merge)
                // error instead of this one; the scratch location must
                // not get lost with it.
                eprintln!(
                    "[exec] shard scratch kept for inspection: {}",
                    work_dir.display()
                );
            }
            Err(ExecError::Spawn(failures.join("; ")))
        }
    }
}

// ---------------------------------------------------------------------------
// Worker circuit breakers
// ---------------------------------------------------------------------------

/// Tuning for [`WorkerBreakers`].
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive failures that open a worker's breaker.
    pub failure_threshold: u32,
    /// How long an open breaker skips its worker before allowing a
    /// half-open trial (lazily on the next dispatch, or eagerly via the
    /// coordinator's background `/healthz` prober).
    pub cooldown: std::time::Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: std::time::Duration::from_secs(10),
        }
    }
}

/// The state of one worker's circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: dispatches flow normally.
    Closed,
    /// Tripped: the worker is skipped until the cooldown elapses.
    Open,
    /// Probation: one trial (dispatch or probe) decides — success closes
    /// the breaker, failure re-opens it for another cooldown.
    HalfOpen,
}

impl BreakerState {
    /// Lower-case name, as reported by `/healthz`.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }

    /// The `spnn_worker_breaker_state` gauge encoding:
    /// 0 closed, 1 open, 2 half-open.
    fn gauge_value(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

#[derive(Debug)]
struct BreakerEntry {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<std::time::Instant>,
    gauge: crate::metrics::Gauge,
}

/// Per-worker circuit breakers shared by every dispatch a coordinator
/// makes: consecutive failures open a worker's breaker, an open breaker
/// skips the worker (zero dispatch attempts) for a cooldown, and a
/// half-open trial — the next dispatch after the cooldown, or a
/// background `GET /healthz` probe — decides whether it closes or
/// re-opens. This replaces rediscovering a dead worker from scratch on
/// every shard attempt.
///
/// State per worker is surfaced as the `spnn_worker_breaker_state{worker}`
/// gauge (0 closed, 1 open, 2 half-open) and in the coordinator's
/// `/healthz` body. Breakers affect **placement only** — which worker
/// computes a slice — never results: the shard planner is deterministic,
/// so any admitted worker produces the identical partial.
#[derive(Debug)]
pub struct WorkerBreakers {
    config: BreakerConfig,
    registry: MetricsRegistry,
    inner: std::sync::Mutex<std::collections::HashMap<String, BreakerEntry>>,
}

impl WorkerBreakers {
    /// Fresh breakers (all closed), registering per-worker state gauges
    /// in `registry` as workers are first seen.
    pub fn new(config: BreakerConfig, registry: &MetricsRegistry) -> Self {
        WorkerBreakers {
            config,
            registry: registry.clone(),
            inner: std::sync::Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// The breaker tuning this set was built with.
    pub fn config(&self) -> BreakerConfig {
        self.config
    }

    fn with_entry<T>(&self, worker: &str, f: impl FnOnce(&mut BreakerEntry) -> T) -> T {
        let mut inner = self.inner.lock().expect("breaker lock");
        let entry = inner.entry(worker.to_string()).or_insert_with(|| {
            let gauge = self.registry.gauge(
                "spnn_worker_breaker_state",
                "Per-worker circuit breaker state: 0 closed, 1 open, 2 half-open.",
                &[("worker", worker)],
            );
            gauge.set(BreakerState::Closed.gauge_value());
            BreakerEntry {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                gauge,
            }
        });
        f(entry)
    }

    fn set_state(entry: &mut BreakerEntry, state: BreakerState) {
        entry.state = state;
        entry.gauge.set(state.gauge_value());
        entry.opened_at = if state == BreakerState::Open {
            Some(std::time::Instant::now())
        } else {
            None
        };
    }

    /// Whether a dispatch to `worker` is admitted right now. An open
    /// breaker whose cooldown has elapsed transitions to half-open here
    /// (lazily) and admits the trial.
    pub fn admits(&self, worker: &str) -> bool {
        let cooldown = self.config.cooldown;
        self.with_entry(worker, |entry| match entry.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if entry.opened_at.is_none_or(|t| t.elapsed() >= cooldown) {
                    Self::set_state(entry, BreakerState::HalfOpen);
                    true
                } else {
                    false
                }
            }
        })
    }

    /// Records a successful dispatch or probe: the breaker closes and the
    /// failure count resets.
    pub fn record_success(&self, worker: &str) {
        self.with_entry(worker, |entry| {
            entry.consecutive_failures = 0;
            if entry.state != BreakerState::Closed {
                tevent!(Level::Info, "exec", "breaker closed", worker = worker,);
                Self::set_state(entry, BreakerState::Closed);
            }
        });
    }

    /// Records a failed dispatch or probe: at the threshold a closed
    /// breaker opens; a half-open trial failure re-opens immediately.
    pub fn record_failure(&self, worker: &str) {
        let threshold = self.config.failure_threshold.max(1);
        self.with_entry(worker, |entry| {
            entry.consecutive_failures = entry.consecutive_failures.saturating_add(1);
            let trip = match entry.state {
                BreakerState::Closed => entry.consecutive_failures >= threshold,
                BreakerState::HalfOpen => true,
                BreakerState::Open => {
                    // A straggler failure while already open refreshes the
                    // cooldown clock.
                    entry.opened_at = Some(std::time::Instant::now());
                    false
                }
            };
            if trip {
                tevent!(
                    Level::Warn,
                    "exec",
                    "breaker opened",
                    worker = worker,
                    consecutive_failures = entry.consecutive_failures,
                );
                Self::set_state(entry, BreakerState::Open);
            }
        });
    }

    /// Workers due a half-open probe: open breakers past their cooldown
    /// transition to half-open and are returned, along with workers
    /// already half-open (a probe re-check is harmless). The caller
    /// probes each and feeds the verdict back via
    /// [`record_success`](Self::record_success) /
    /// [`record_failure`](Self::record_failure).
    pub fn probe_due(&self) -> Vec<String> {
        let cooldown = self.config.cooldown;
        let mut inner = self.inner.lock().expect("breaker lock");
        let mut due = Vec::new();
        for (worker, entry) in inner.iter_mut() {
            match entry.state {
                BreakerState::Open if entry.opened_at.is_none_or(|t| t.elapsed() >= cooldown) => {
                    Self::set_state(entry, BreakerState::HalfOpen);
                    due.push(worker.clone());
                }
                BreakerState::HalfOpen => due.push(worker.clone()),
                _ => {}
            }
        }
        due.sort();
        due
    }

    /// Every known worker's current state, sorted by worker URL — the
    /// `/healthz` view.
    pub fn snapshot(&self) -> Vec<(String, BreakerState)> {
        let inner = self.inner.lock().expect("breaker lock");
        let mut out: Vec<(String, BreakerState)> =
            inner.iter().map(|(w, e)| (w.clone(), e.state)).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

// ---------------------------------------------------------------------------
// Capacity weights
// ---------------------------------------------------------------------------

/// Where a fleet dispatch's capacity weights come from (see
/// [`RemoteExecutor::with_weights`] and the CLI's `--weights-from`).
///
/// Weights feed [`crate::shard::plan_shard_weighted`]: peer `i`'s slice
/// of the global round space is proportional to `weights[i]`. The peer
/// order is the worker list order, followed by local peers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightSource {
    /// Equal slices — exactly the classic [`crate::shard::plan_shard`].
    Equal,
    /// Seed each remote peer's weight from its `/healthz`-reported core
    /// count (local peers use this machine's core count, split across
    /// them). Unreachable workers weigh 1.
    Healthz,
    /// The [`Healthz`](Self::Healthz) seed, refined by observed
    /// per-worker dispatch throughput from the
    /// `spnn_shard_dispatch_duration_seconds{worker}` histograms — a
    /// coordinator that has already dispatched to a fleet weighs it by
    /// measured speed, not advertised cores.
    Metrics,
    /// Operator-pinned integer weights, one per peer in peer order.
    Static(Vec<u64>),
}

impl WeightSource {
    /// Parses a `--weights-from` value: `equal`, `healthz`, `metrics`,
    /// or a comma-separated integer list (`"3,1,2"`) pinning one weight
    /// per peer.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the value is neither a
    /// known source nor a parseable integer list.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value.trim() {
            "equal" => Ok(WeightSource::Equal),
            "healthz" => Ok(WeightSource::Healthz),
            "metrics" => Ok(WeightSource::Metrics),
            other => other
                .split(',')
                .map(|tok| tok.trim().parse::<u64>())
                .collect::<Result<Vec<u64>, _>>()
                .map(WeightSource::Static)
                .map_err(|_| {
                    format!(
                        "unknown weight source {other:?} \
                         (expected equal, healthz, metrics, or a comma-separated integer list)"
                    )
                }),
        }
    }
}

/// Fetches a worker's `/healthz` and extracts its advertised core count
/// (the `"cores"` field workers report since the fleet release).
fn probe_worker_cores(worker: &str, cancel: &CancelToken) -> Option<u64> {
    let abort = || cancel.is_cancelled();
    let url = format!("{worker}/healthz");
    let resp = http::http_get(&url, Some(&abort), Some(Duration::from_secs(5))).ok()?;
    if resp.status != 200 {
        return None;
    }
    crate::json::parse(&resp.text())
        .ok()?
        .get("cores")?
        .as_u64()
}

/// The observed dispatch throughput of `worker` (completed dispatches
/// per second of round-trip time), read from this registry's
/// `spnn_shard_dispatch_duration_seconds{worker}` histogram. `None`
/// until the worker has at least one timed dispatch.
fn observed_dispatch_rate(registry: &MetricsRegistry, worker: &str) -> Option<f64> {
    for series in registry.snapshot() {
        if series.name != "spnn_shard_dispatch_duration_seconds" {
            continue;
        }
        if !series
            .labels
            .iter()
            .any(|(k, v)| k == "worker" && v == worker)
        {
            continue;
        }
        if let Reading::Histogram { sum, count, .. } = series.value {
            if count > 0 && sum > 0.0 {
                return Some(count as f64 / sum);
            }
        }
    }
    None
}

/// Scales positive scores to integer weights in `1..=1000` (the fastest
/// peer gets 1000; nobody is starved to zero — a mis-probed peer still
/// contributes instead of idling).
fn integerize_weights(scores: &[f64]) -> Vec<u64> {
    let max = scores.iter().copied().fold(0.0f64, f64::max);
    if !max.is_finite() || max <= 0.0 {
        return vec![1; scores.len()];
    }
    scores
        .iter()
        .map(|&s| ((s / max) * 1000.0).round().max(1.0) as u64)
        .collect()
}

// ---------------------------------------------------------------------------
// RemoteExecutor
// ---------------------------------------------------------------------------

/// The `/shard` query fragment selecting the kernel profile. Empty for
/// [`KernelProfile::Reference`] so coordinator request lines (and any
/// middleware matching on them) are byte-identical to earlier releases.
fn kernel_query_suffix(kernel: KernelProfile) -> String {
    match kernel {
        KernelProfile::Reference => String::new(),
        other => format!("&kernel={}", other.as_str()),
    }
}

/// Remote execution: dispatches each shard to a worker `spnn serve`
/// instance as `POST /shard?shards=k&index=i` with the canonical spec
/// text as the body, and parses the returned [`PartialReport`].
///
/// Shard `i` starts on worker `i mod n` (round-robin); on any failure —
/// refused connection, worker killed mid-run, torn or foreign response —
/// the shard is **retried on the next worker**, each worker at most once
/// per shard. The shard planner is a pure function of the spec, so a
/// recomputed slice is bit-identical wherever it runs; a merge over
/// retried shards is indistinguishable from one without failures.
///
/// # Fleet mode
///
/// Three builders turn the plain remote fan-out into an elastic fleet,
/// individually or together:
///
/// - [`with_local_peers`](Self::with_local_peers) adds in-process peers:
///   one `run_distributed` call drives local threads *and* remote
///   workers as peers of a single plan;
/// - [`with_weights`](Self::with_weights) slices the round space
///   proportionally to capacity ([`WeightSource`]) instead of equally;
/// - [`with_steal`](Self::with_steal) enables work stealing: a peer
///   that drains its slice re-dispatches the slowest outstanding slice,
///   sub-sliced across idle peers via the span planner
///   (`POST /shard?span=LO-HI`). The straggler keeps computing — every
///   iteration is a pure function of `(seed, k)`, so the overlapping
///   speculative results are bit-identical and the merge deduplicates
///   them; completion cancels whatever is still in flight.
///
/// In every mode the assembled report is byte-identical to the
/// unsharded run (chaos-gated in CI).
#[derive(Debug, Clone)]
pub struct RemoteExecutor {
    /// Worker base URLs (`http://host:port`, no trailing slash needed).
    pub workers: Vec<String>,
    /// Optional shared circuit breakers: an open breaker's worker is
    /// skipped with zero dispatch attempts (see [`WorkerBreakers`]).
    breakers: Option<Arc<WorkerBreakers>>,
    /// In-process peers joining the plan after the remote workers.
    local_peers: usize,
    /// Capacity weighting for the initial plan.
    weights_from: WeightSource,
    /// Whether drained peers steal from the slowest outstanding slice.
    steal: bool,
}

impl RemoteExecutor {
    /// A remote executor over `workers`, trailing slashes trimmed.
    pub fn new(workers: impl IntoIterator<Item = String>) -> Self {
        RemoteExecutor {
            workers: workers
                .into_iter()
                .map(|w| w.trim_end_matches('/').to_string())
                .collect(),
            breakers: None,
            local_peers: 0,
            weights_from: WeightSource::Equal,
            steal: false,
        }
    }

    /// Attaches shared circuit breakers — every dispatch consults them
    /// and reports its outcome back. A coordinator shares one set across
    /// all requests so worker health outlives any single run.
    #[must_use]
    pub fn with_breakers(mut self, breakers: Arc<WorkerBreakers>) -> Self {
        self.breakers = Some(breakers);
        self
    }

    /// Adds `n` in-process peers to the plan (mixed dispatch): they rank
    /// after the remote workers in peer order, prepare the scenario once
    /// between them, and split this machine's cores evenly.
    #[must_use]
    pub fn with_local_peers(mut self, n: usize) -> Self {
        self.local_peers = n;
        self
    }

    /// Slices the round space proportionally to capacity instead of
    /// equally. See [`WeightSource`] for the probing strategies.
    #[must_use]
    pub fn with_weights(mut self, source: WeightSource) -> Self {
        self.weights_from = source;
        self
    }

    /// Enables work stealing: a peer that drains its slice re-dispatches
    /// the slowest outstanding slice across idle peers. Overlapping
    /// speculative results are deduplicated by the merge.
    #[must_use]
    pub fn with_steal(mut self, steal: bool) -> Self {
        self.steal = steal;
        self
    }

    /// Total peers in the plan: remote workers then local peers.
    fn peers(&self) -> usize {
        self.workers.len() + self.local_peers
    }

    /// `true` when nothing distinguishes this from the classic equal
    /// remote fan-out — that exact code path is kept for it.
    fn is_plain_remote(&self) -> bool {
        self.local_peers == 0 && !self.steal && self.weights_from == WeightSource::Equal
    }

    /// Runs one shard, trying each worker at most once starting at
    /// `shard_index mod n`. Returns the partial or the per-worker
    /// failure log.
    #[allow(clippy::too_many_arguments)] // dispatch coordinates plus observability handles
    fn run_shard(
        &self,
        spec_text: &str,
        expected_fp: &str,
        kernel: KernelProfile,
        shards: usize,
        shard_index: usize,
        cancel: &CancelToken,
        verbose: bool,
        registry: &MetricsRegistry,
    ) -> Result<PartialReport, String> {
        self.dispatch(
            spec_text,
            expected_fp,
            &format!(
                "shards={shards}&index={shard_index}{}",
                kernel_query_suffix(kernel)
            ),
            &format!("shard {shard_index}/{shards}"),
            shard_index,
            cancel,
            verbose,
            registry,
        )
    }

    /// Runs the round-space span `[lo, hi)` (`POST /shard?span=LO-HI`),
    /// starting the worker rotation at `start` — a stealer re-dispatches
    /// on its own worker first.
    #[allow(clippy::too_many_arguments)] // dispatch coordinates plus observability handles
    fn run_span(
        &self,
        spec_text: &str,
        expected_fp: &str,
        kernel: KernelProfile,
        lo: usize,
        hi: usize,
        start: usize,
        cancel: &CancelToken,
        verbose: bool,
        registry: &MetricsRegistry,
    ) -> Result<PartialReport, String> {
        self.dispatch(
            spec_text,
            expected_fp,
            &format!("span={lo}-{hi}{}", kernel_query_suffix(kernel)),
            &format!("span {lo}..{hi}"),
            start,
            cancel,
            verbose,
            registry,
        )
    }

    /// The shared dispatch loop beneath [`run_shard`](Self::run_shard)
    /// and [`run_span`](Self::run_span): tries each worker at most once,
    /// round-robin from `start`, skipping open breakers.
    ///
    /// Every attempt — successful or not — is counted in
    /// `spnn_shard_dispatch_total{worker,outcome}` and timed in
    /// `spnn_shard_dispatch_duration_seconds{worker}`, and produces one
    /// structured `shard complete` / `shard retry` event on stderr with
    /// the worker URL, attempt number, latency, and (on success) row
    /// count — retries are never silent.
    #[allow(clippy::too_many_arguments)] // dispatch coordinates plus observability handles
    fn dispatch(
        &self,
        spec_text: &str,
        expected_fp: &str,
        query: &str,
        what: &str,
        start: usize,
        cancel: &CancelToken,
        verbose: bool,
        registry: &MetricsRegistry,
    ) -> Result<PartialReport, String> {
        let n = self.workers.len();
        let bytes_streamed = registry.counter(
            "spnn_shard_response_bytes_total",
            "Bytes of shard partials received from workers.",
            &[],
        );
        let retries = registry.counter(
            "spnn_shard_retries_total",
            "Shard attempts retried on another worker.",
            &[],
        );
        let mut reasons = Vec::new();
        // Round-robin order, then drop workers whose breaker is open —
        // zero dispatch attempts reach a tripped worker. If *every*
        // breaker is open the full rotation is tried anyway: a guaranteed
        // failure helps nobody, and the attempts double as trials.
        let rotation: Vec<&String> = (0..n).map(|a| &self.workers[(start + a) % n]).collect();
        let candidates: Vec<&String> = match &self.breakers {
            Some(breakers) => {
                let admitted: Vec<&String> = rotation
                    .iter()
                    .copied()
                    .filter(|w| {
                        let ok = breakers.admits(w);
                        if !ok {
                            registry
                                .counter(
                                    "spnn_shard_breaker_skips_total",
                                    "Shard dispatches skipped because the worker's breaker was open.",
                                    &[("worker", w)],
                                )
                                .inc();
                            reasons.push(format!("{w}: skipped (breaker open)"));
                        }
                        ok
                    })
                    .collect();
                if admitted.is_empty() {
                    rotation.clone()
                } else {
                    admitted
                }
            }
            None => rotation,
        };
        let tries = candidates.len();
        for (attempt, worker) in candidates.into_iter().enumerate() {
            if cancel.is_cancelled() {
                reasons.push("cancelled".to_string());
                break;
            }
            let url = format!("{worker}/shard?{query}");
            let abort = || cancel.is_cancelled();
            let dispatch_timer = std::time::Instant::now();
            // No idle timeout: a /shard response arrives only once the
            // whole slice is computed, which may legitimately take hours.
            // A killed worker closes the socket (an error → retry); a
            // shutdown cancels via `abort`.
            let outcome =
                match http::http_post(&url, spec_text.as_bytes(), "text/plain", Some(&abort), None)
                {
                    Ok(FetchResponse { status: 200, body }) => {
                        bytes_streamed.add(body.len() as u64);
                        let text = String::from_utf8_lossy(&body);
                        match PartialReport::parse(&text) {
                            Ok(p) if p.queue_fingerprint == expected_fp => Ok(p),
                            Ok(p) => Err(format!(
                                "returned foreign fingerprint {}",
                                p.queue_fingerprint
                            )),
                            Err(e) => Err(format!("unreadable partial: {e}")),
                        }
                    }
                    Ok(resp) => Err(format!("HTTP {}: {}", resp.status, resp.text().trim())),
                    Err(e) => Err(format!("{e}")),
                };
            let elapsed = dispatch_timer.elapsed();
            registry
                .histogram(
                    "spnn_shard_dispatch_duration_seconds",
                    "Round-trip latency of shard dispatches, per worker.",
                    &[("worker", worker)],
                    metrics::DURATION_BUCKETS,
                )
                .observe_duration(elapsed);
            registry
                .counter(
                    "spnn_shard_dispatch_total",
                    "Shard dispatches to workers, by outcome.",
                    &[
                        ("worker", worker),
                        ("outcome", if outcome.is_ok() { "ok" } else { "error" }),
                    ],
                )
                .inc();
            if let Some(breakers) = &self.breakers {
                if outcome.is_ok() {
                    breakers.record_success(worker);
                } else {
                    breakers.record_failure(worker);
                }
            }
            match outcome {
                Ok(p) => {
                    tevent!(
                        Level::Info,
                        "exec",
                        "shard complete",
                        job = what,
                        worker = worker,
                        attempt = attempt + 1,
                        seconds = elapsed.as_secs_f64(),
                        rows = p.points.len(),
                    );
                    if verbose {
                        eprintln!("[exec] {what} completed on {worker}");
                    }
                    return Ok(p);
                }
                Err(reason) => {
                    if attempt + 1 < tries {
                        retries.inc();
                    }
                    tevent!(
                        Level::Warn,
                        "exec",
                        "shard retry",
                        job = what,
                        worker = worker,
                        attempt = attempt + 1,
                        seconds = elapsed.as_secs_f64(),
                        error = &reason,
                        will_retry = attempt + 1 < tries,
                    );
                    if verbose {
                        eprintln!("[exec] {what} failed on {worker}, retrying elsewhere: {reason}");
                    }
                    reasons.push(format!("{worker}: {reason}"));
                }
            }
        }
        registry
            .counter(
                "spnn_shard_failures_total",
                "Shards no worker could produce.",
                &[],
            )
            .inc();
        Err(format!(
            "{what}: every worker failed ({})",
            reasons.join("; ")
        ))
    }
}

/// One peer's slice of the current fleet plan, under the shared lock.
struct FleetSlice {
    /// The assigned unit range of the global round space.
    span: (usize, usize),
    /// When its dispatch started — the steal heuristic picks the
    /// longest-outstanding slice as the straggler.
    started: Instant,
    /// The owning dispatch returned (partial delivered or failed).
    done: bool,
    /// A stealer already re-dispatched this span; steal it only once.
    stolen: bool,
}

impl RemoteExecutor {
    /// Resolves one capacity weight per peer (worker order, then local
    /// peers) from the configured [`WeightSource`], and surfaces them on
    /// the `spnn_worker_capacity_weight{worker}` gauge.
    fn resolve_weights(&self, registry: &MetricsRegistry, cancel: &CancelToken) -> Vec<u64> {
        let peers = self.peers();
        let weights = match &self.weights_from {
            WeightSource::Equal => vec![1u64; peers],
            WeightSource::Static(v) => {
                if v.len() != peers {
                    tevent!(
                        Level::Warn,
                        "exec",
                        "static weight count differs from peer count",
                        weights = v.len(),
                        peers = peers,
                    );
                }
                let mut v = v.clone();
                v.resize(peers, 1);
                v
            }
            source @ (WeightSource::Healthz | WeightSource::Metrics) => {
                let machine_cores = std::thread::available_parallelism()
                    .map(|n| n.get() as u64)
                    .unwrap_or(1);
                let local_share = if self.local_peers > 0 {
                    (machine_cores / self.local_peers as u64).max(1)
                } else {
                    1
                };
                let mut cores: Vec<f64> = self
                    .workers
                    .iter()
                    .map(|w| probe_worker_cores(w, cancel).unwrap_or(1) as f64)
                    .collect();
                cores.extend(std::iter::repeat_n(local_share as f64, self.local_peers));
                let mut scores = cores.clone();
                if *source == WeightSource::Metrics {
                    // Refine with observed throughput where we have it.
                    // Unobserved peers keep their core count, scaled into
                    // rate units by the mean observed rate-per-core so
                    // the two kinds of score stay comparable.
                    let rates: Vec<Option<f64>> = self
                        .workers
                        .iter()
                        .map(|w| observed_dispatch_rate(registry, w))
                        .collect();
                    let per_core: Vec<f64> = rates
                        .iter()
                        .enumerate()
                        .filter_map(|(i, r)| r.map(|r| r / cores[i].max(1.0)))
                        .collect();
                    if !per_core.is_empty() {
                        let mean = per_core.iter().sum::<f64>() / per_core.len() as f64;
                        for (i, score) in scores.iter_mut().enumerate() {
                            *score = match rates.get(i).copied().flatten() {
                                Some(rate) => rate,
                                None => cores[i] * mean,
                            };
                        }
                    }
                }
                integerize_weights(&scores)
            }
        };
        for (i, &wt) in weights.iter().enumerate() {
            let label = if i < self.workers.len() {
                self.workers[i].clone()
            } else {
                format!("local-{}", i - self.workers.len())
            };
            registry
                .gauge(
                    "spnn_worker_capacity_weight",
                    "Resolved capacity weight of each fleet peer (slice size is proportional).",
                    &[("worker", &label)],
                )
                .set(wt as i64);
        }
        weights
    }

    /// The classic equal remote fan-out (shard `i` of `k` per worker) —
    /// kept verbatim as the plain-remote and fallback path.
    fn execute_equal(
        &self,
        spec: &ScenarioSpec,
        shards: usize,
        ctx: &ExecContext<'_>,
        deliver: &mut dyn FnMut(PartialReport) -> bool,
    ) -> Result<(), ExecError> {
        let spec_text = spec.to_text();
        let kernel = ctx.config.kernel;
        let expected_fp = queue_fingerprint_with(spec, kernel);
        let verbose = ctx.config.verbose;

        let (tx, rx) = mpsc::channel::<Result<PartialReport, String>>();
        let mut failures = Vec::new();
        std::thread::scope(|scope| {
            for index in 0..shards {
                let tx = tx.clone();
                let (spec_text, expected_fp) = (&spec_text, &expected_fp);
                let cancel = ctx.cancel;
                let registry = &ctx.config.metrics;
                scope.spawn(move || {
                    let result = self.run_shard(
                        spec_text,
                        expected_fp,
                        kernel,
                        shards,
                        index,
                        cancel,
                        verbose,
                        registry,
                    );
                    let _ = tx.send(result);
                });
            }
            drop(tx);
            for result in rx {
                match result {
                    Ok(partial) => {
                        let _ = deliver(partial);
                    }
                    Err(e) => failures.push(e),
                }
            }
        });

        if failures.is_empty() {
            Ok(())
        } else if ctx.cancel.is_cancelled() {
            Err(ExecError::Cancelled)
        } else {
            Err(ExecError::Remote(failures.join("; ")))
        }
    }

    /// Fleet dispatch: one span per peer (weighted or equal), local and
    /// remote peers side by side, with optional work stealing.
    fn execute_fleet(
        &self,
        spec: &ScenarioSpec,
        shards: usize,
        ctx: &ExecContext<'_>,
        deliver: &mut dyn FnMut(PartialReport) -> bool,
    ) -> Result<(), ExecError> {
        let peers = self.peers();
        let remote = self.workers.len();
        let verbose = ctx.config.verbose;
        let registry = &ctx.config.metrics;

        // Geometry: every planner variant slices the global round space,
        // which local peers read off the prepared queue and a pure-remote
        // coordinator derives statically from the spec. A queue whose
        // length is not statically derivable (zonal sweeps) falls back to
        // the classic equal plan — correct, just not elastic.
        let prep = if self.local_peers > 0 {
            Some(prepare(spec, ctx.config, ctx.cache)?)
        } else {
            None
        };
        let rounds_per_point: Vec<usize> = match &prep {
            Some(p) => crate::runner::sweep_rounds_per_point(p),
            None => match crate::queue::static_queue_len(spec) {
                Some(per_topology) => {
                    let points = per_topology * spec.topologies.len();
                    vec![spec.iterations.div_ceil(spec.round_size.max(1)); points]
                }
                None => {
                    tevent!(
                        Level::Warn,
                        "exec",
                        "fleet plan falls back to equal remote dispatch",
                        reason = "queue length not statically derivable from the spec",
                    );
                    return self.execute_equal(spec, shards, ctx, deliver);
                }
            },
        };

        let weights = self.resolve_weights(registry, ctx.cancel);
        let spans: Vec<(usize, usize)> = (0..peers)
            .map(|i| weighted_span(&rounds_per_point, &weights, i))
            .collect();

        let steal_total = registry.counter(
            "spnn_steal_total",
            "Work-steal claims: a drained peer re-dispatched a straggler's span.",
            &[],
        );
        let redispatched = registry.counter(
            "spnn_shard_rounds_redispatched_total",
            "Rounds re-dispatched speculatively by work stealing.",
            &[],
        );

        let spec_text = spec.to_text();
        let kernel = ctx.config.kernel;
        let fp = queue_fingerprint_with(spec, kernel);
        let local_threads = threads_per_shard(ctx.config, self.local_peers.max(1));
        let rctx = ctx
            .config
            .row_cache
            .as_ref()
            .map(|rc| (rc.as_ref(), RowContext::of_spec_with(spec, kernel)));
        let cancel = ctx.cancel;

        let slices: Mutex<Vec<FleetSlice>> = Mutex::new(
            spans
                .iter()
                .map(|&span| FleetSlice {
                    span,
                    started: Instant::now(),
                    done: false,
                    stolen: false,
                })
                .collect(),
        );
        let tasks: Mutex<VecDeque<(usize, usize)>> = Mutex::new(VecDeque::new());

        // Runs `[lo, hi)` on peer `me`: remote peers POST the span (with
        // the usual retry rotation, starting at their own worker); local
        // peers plan and execute the blocks in-process.
        let dispatch_span =
            |me: usize, (lo, hi): (usize, usize)| -> Result<PartialReport, String> {
                if me < remote {
                    self.run_span(
                        &spec_text, &fp, kernel, lo, hi, me, cancel, verbose, registry,
                    )
                } else {
                    let prep = prep.as_ref().expect("local peers prepared the scenario");
                    let blocks = plan_span(&rounds_per_point, lo, hi);
                    Ok(execute_blocks(
                        prep,
                        fp.clone(),
                        kernel,
                        peers,
                        me,
                        &blocks,
                        local_threads,
                        verbose,
                        registry,
                        rctx.as_ref().map(|(rc, c)| (*rc, c)),
                    ))
                }
            };

        // Pops a stolen sub-span, or claims the slowest outstanding
        // slice and splits its whole span across the fleet. The victim
        // keeps computing — its eventual answer is bit-identical to the
        // speculative re-dispatch, and the merge deduplicates; whole-span
        // re-dispatch is required because the victim's dispatch is one
        // blocking POST that only completion (and cancellation) unblocks.
        let next_task = || -> Option<(usize, usize)> {
            if let Some(task) = tasks.lock().expect("steal queue lock").pop_front() {
                return Some(task);
            }
            let (victim, lo, hi) = {
                let mut held = slices.lock().expect("fleet slice lock");
                let victim = held
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !s.done && !s.stolen && s.span.0 < s.span.1)
                    .min_by_key(|(_, s)| s.started)
                    .map(|(i, _)| i)?;
                held[victim].stolen = true;
                let (lo, hi) = held[victim].span;
                (victim, lo, hi)
            };
            let units = hi - lo;
            let parts = peers.min(units).max(1);
            steal_total.inc();
            redispatched.add(units as u64);
            tevent!(
                Level::Info,
                "exec",
                "steal",
                victim = victim,
                lo = lo,
                hi = hi,
                parts = parts,
            );
            let mut queue = tasks.lock().expect("steal queue lock");
            for part in 1..parts {
                queue.push_back((lo + part * units / parts, lo + (part + 1) * units / parts));
            }
            Some((lo, lo + units / parts))
        };

        let (tx, rx) = mpsc::channel::<Result<PartialReport, String>>();
        let mut failures = Vec::new();
        std::thread::scope(|scope| {
            for me in 0..peers {
                let tx = tx.clone();
                let (dispatch_span, next_task) = (&dispatch_span, &next_task);
                let slices = &slices;
                let steal = self.steal;
                scope.spawn(move || {
                    let own = {
                        let held = slices.lock().expect("fleet slice lock");
                        held[me].span
                    };
                    if own.0 < own.1 && !cancel.is_cancelled() {
                        let result = dispatch_span(me, own);
                        slices.lock().expect("fleet slice lock")[me].done = true;
                        let _ = tx.send(result);
                    } else {
                        slices.lock().expect("fleet slice lock")[me].done = true;
                    }
                    if steal {
                        while !cancel.is_cancelled() {
                            let Some(span) = next_task() else { break };
                            let _ = tx.send(dispatch_span(me, span));
                        }
                    }
                });
            }
            drop(tx);
            for result in rx {
                match result {
                    Ok(partial) => {
                        let _ = deliver(partial);
                    }
                    Err(e) => failures.push(e),
                }
            }
        });
        if let Some(prep) = &prep {
            crate::runner::persist_context(ctx.cache, prep, verbose);
        }

        if ctx.cancel.is_cancelled() {
            // Cancellation aborts in-flight dispatches mid-read; their
            // failures are expected, and the driver decides whether the
            // merge completed first (early completion) or not.
            Err(ExecError::Cancelled)
        } else if failures.is_empty() {
            Ok(())
        } else {
            Err(ExecError::Remote(failures.join("; ")))
        }
    }
}

impl Executor for RemoteExecutor {
    fn name(&self) -> &'static str {
        if self.local_peers > 0 {
            "fleet"
        } else {
            "remote"
        }
    }

    fn execute(
        &self,
        spec: &ScenarioSpec,
        shards: usize,
        ctx: &ExecContext<'_>,
        deliver: &mut dyn FnMut(PartialReport) -> bool,
    ) -> Result<(), ExecError> {
        if self.peers() == 0 {
            return Err(ExecError::Remote("no workers configured".into()));
        }
        if self.is_plain_remote() {
            return self.execute_equal(spec, shards, ctx, deliver);
        }
        self.execute_fleet(spec, shards, ctx, deliver)
    }
}

// ---------------------------------------------------------------------------
// The unified distributed driver
// ---------------------------------------------------------------------------

/// Why a distributed run failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum DistError {
    /// The executor could not produce every shard.
    Exec(ExecError),
    /// Delivered partials do not merge (foreign fingerprint, overlap,
    /// corrupt block, incomplete coverage).
    Merge(MergeError),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Exec(e) => write!(f, "{e}"),
            DistError::Merge(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<ExecError> for DistError {
    fn from(e: ExecError) -> Self {
        DistError::Exec(e)
    }
}

impl From<MergeError> for DistError {
    fn from(e: MergeError) -> Self {
        DistError::Merge(e)
    }
}

/// Runs `spec` as a `shards`-way split through `executor`, merging
/// partials **as they arrive** and emitting the engine's standard
/// [`StreamEvent`]s: `Started` and per-topology events when the first
/// partial lands (all partials carry identical summaries — validated),
/// then each `Row` the moment its coverage is decidable, in prefix
/// order, from whichever shard finishes first.
///
/// This is *the* driver behind `spnn run --shards k --exec local`,
/// `--shards k --spawn`, `spnn run --workers …`, and the coordinator
/// form of `spnn serve` — four spellings of one code path. The returned
/// report (and therefore the event stream) is byte-identical to the
/// unsharded [`crate::run_scenario_with`]: the merge replays the
/// adaptive stop rule over recombined samples exactly as
/// [`crate::shard::merge_partials`] does, because both *are*
/// [`MergeState`].
///
/// # Errors
///
/// [`DistError::Exec`] when the executor fails (or is cancelled),
/// [`DistError::Merge`] when delivered partials do not merge cleanly.
pub fn run_distributed(
    spec: &ScenarioSpec,
    executor: &dyn Executor,
    shards: usize,
    ctx: &ExecContext<'_>,
    observe: &mut dyn FnMut(StreamEvent<'_>),
) -> Result<EngineReport, DistError> {
    if shards == 0 {
        return Err(DistError::Exec(ExecError::Engine(EngineError::Invalid(
            "shards must be positive".into(),
        ))));
    }
    // A spec whose every row is resident in the row cache never fans out
    // at all: the report replays coordinator-side, zero dispatches.
    if let Some(rc) = &ctx.config.row_cache {
        if let Some(report) = replay_cached_scenario(spec, ctx.config.kernel, rc, observe) {
            return Ok(report);
        }
    }
    let mut merge = MergeState::with_metrics(&ctx.config.metrics);
    if let Some(rc) = &ctx.config.row_cache {
        merge.publish_rows_to(
            Arc::clone(rc),
            RowContext::of_spec_with(spec, ctx.config.kernel),
        );
    }
    // The executor runs under a child token: the moment the merge has
    // every row, outstanding dispatches are pure speculation (work
    // stealing re-covers spans a straggler still holds) — cancel them
    // rather than wait. The straggler's eventual answer would have been
    // a bit-identical duplicate anyway.
    let work = ctx.cancel.child();
    let work_ctx = ExecContext {
        config: ctx.config,
        cache: ctx.cache,
        cancel: &work,
    };
    let mut merge_err: Option<MergeError> = None;
    let mut started = false;
    let exec_result = executor.execute(spec, shards, &work_ctx, &mut |partial| {
        if merge_err.is_some() {
            return false;
        }
        if !started {
            started = true;
            observe(StreamEvent::Started {
                scenario: &partial.scenario,
                total_points: partial.total_points,
            });
            for t in &partial.topologies {
                observe(StreamEvent::Topology(t));
            }
        }
        match merge.push(partial) {
            Ok(rows) => {
                for (index, row) in &rows {
                    observe(StreamEvent::Row { index: *index, row });
                }
                if merge.is_complete() {
                    work.cancel();
                }
                true
            }
            Err(e) => {
                merge_err = Some(e);
                false
            }
        }
    });
    // A merge inconsistency is the root cause; executor errors observed
    // afterwards are usually downstream of it.
    if let Some(e) = merge_err {
        return Err(e.into());
    }
    match exec_result {
        Ok(()) => {}
        // Early completion: the merge finished off the speculative
        // overlap before every dispatch returned, and the remainder was
        // cancelled deliberately. The report below is whole.
        Err(ExecError::Cancelled) if merge.is_complete() => {}
        Err(e) => return Err(e.into()),
    }
    let report = merge.finalize()?;
    if let Some(rc) = &ctx.config.row_cache {
        let rctx = RowContext::of_spec_with(spec, ctx.config.kernel);
        rc.put_manifest(
            &queue_fingerprint_with(spec, ctx.config.kernel),
            RowManifest {
                scenario: report.scenario.clone(),
                topologies: report.topologies.clone(),
                row_keys: report
                    .rows
                    .iter()
                    .map(|r| rctx.key(&r.topology, &r.labels).hex())
                    .collect(),
            },
        );
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_clones_share_state() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        // A fresh token is unaffected by other tokens.
        assert!(!CancelToken::new().is_cancelled());
    }

    #[test]
    fn child_tokens_observe_the_parent_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child();
        assert!(!child.is_cancelled());
        // Cancelling the child leaves the parent alone.
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled());
        // Cancelling the parent cancels (fresh) children.
        let other = parent.child();
        parent.cancel();
        assert!(other.is_cancelled());
    }

    #[test]
    fn breaker_trips_after_consecutive_failures_and_recovers_via_half_open() {
        let registry = MetricsRegistry::new();
        let breakers = WorkerBreakers::new(
            BreakerConfig {
                failure_threshold: 2,
                cooldown: std::time::Duration::from_millis(20),
            },
            &registry,
        );
        let w = "http://w:1";
        assert!(breakers.admits(w));
        breakers.record_failure(w);
        assert!(breakers.admits(w), "one failure is below the threshold");
        breakers.record_failure(w);
        assert_eq!(
            breakers.snapshot(),
            vec![(w.to_string(), BreakerState::Open)]
        );
        assert!(!breakers.admits(w), "open breaker skips the worker");
        assert!(
            registry
                .render()
                .contains("spnn_worker_breaker_state{worker=\"http://w:1\"} 1"),
            "{}",
            registry.render()
        );
        // After the cooldown the next admit is a half-open trial.
        std::thread::sleep(std::time::Duration::from_millis(25));
        assert!(breakers.admits(w));
        assert_eq!(
            breakers.snapshot(),
            vec![(w.to_string(), BreakerState::HalfOpen)]
        );
        // Trial success closes; the counter resets (two more failures to
        // re-open, not one).
        breakers.record_success(w);
        assert_eq!(
            breakers.snapshot(),
            vec![(w.to_string(), BreakerState::Closed)]
        );
        breakers.record_failure(w);
        assert!(breakers.admits(w));
    }

    #[test]
    fn half_open_probe_failure_reopens_the_breaker() {
        let registry = MetricsRegistry::new();
        let breakers = WorkerBreakers::new(
            BreakerConfig {
                failure_threshold: 1,
                cooldown: std::time::Duration::from_millis(10),
            },
            &registry,
        );
        let w = "http://w:2";
        breakers.record_failure(w);
        assert!(!breakers.admits(w));
        assert!(breakers.probe_due().is_empty(), "cooldown not elapsed yet");
        std::thread::sleep(std::time::Duration::from_millis(15));
        assert_eq!(breakers.probe_due(), vec![w.to_string()]);
        // The failed probe re-opens for a fresh cooldown.
        breakers.record_failure(w);
        assert_eq!(
            breakers.snapshot(),
            vec![(w.to_string(), BreakerState::Open)]
        );
        assert!(!breakers.admits(w));
        // Next cooldown, the probe succeeds and the breaker closes.
        std::thread::sleep(std::time::Duration::from_millis(15));
        assert_eq!(breakers.probe_due(), vec![w.to_string()]);
        breakers.record_success(w);
        assert_eq!(
            breakers.snapshot(),
            vec![(w.to_string(), BreakerState::Closed)]
        );
        assert!(breakers.probe_due().is_empty());
    }

    #[test]
    fn all_breakers_open_still_tries_the_rotation() {
        // With every breaker open, run_shard's candidate filter falls
        // back to the full rotation: a dispatch attempt is made (and
        // fails, since nothing listens) rather than failing with zero
        // attempts forever.
        let registry = MetricsRegistry::new();
        let breakers = Arc::new(WorkerBreakers::new(
            BreakerConfig {
                failure_threshold: 1,
                cooldown: std::time::Duration::from_secs(3600),
            },
            &registry,
        ));
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            format!("http://{}", l.local_addr().unwrap())
        };
        breakers.record_failure(&dead);
        assert!(!breakers.admits(&dead));
        let ex = RemoteExecutor::new(vec![dead.clone()]).with_breakers(Arc::clone(&breakers));
        let cancel = CancelToken::new();
        let err = ex
            .run_shard(
                "spec",
                "fp",
                KernelProfile::Reference,
                1,
                0,
                &cancel,
                false,
                &registry,
            )
            .expect_err("nothing listens");
        assert!(err.contains("shard 0"), "{err}");
        // The fallback attempt was dispatched (counted), not skipped.
        let rendered = registry.render();
        assert!(rendered.contains("spnn_shard_dispatch_total"), "{rendered}");
    }

    #[test]
    fn remote_executor_normalizes_worker_urls() {
        let ex = RemoteExecutor::new(vec!["http://a:1/".to_string(), "http://b:2".to_string()]);
        assert_eq!(ex.workers, vec!["http://a:1", "http://b:2"]);
    }

    #[test]
    fn remote_executor_without_workers_fails_fast() {
        let ex = RemoteExecutor::new(Vec::new());
        let spec = ScenarioSpec::default();
        let config = EngineConfig::default();
        let cache = ContextCache::in_memory();
        let cancel = CancelToken::new();
        let ctx = ExecContext {
            config: &config,
            cache: &cache,
            cancel: &cancel,
        };
        let err =
            run_distributed(&spec, &ex, 2, &ctx, &mut |_| {}).expect_err("no workers must fail");
        assert!(
            matches!(err, DistError::Exec(ExecError::Remote(_))),
            "{err}"
        );
    }

    #[test]
    fn zero_shards_is_rejected() {
        let spec = ScenarioSpec::default();
        let config = EngineConfig::default();
        let cache = ContextCache::in_memory();
        let cancel = CancelToken::new();
        let ctx = ExecContext {
            config: &config,
            cache: &cache,
            cancel: &cancel,
        };
        assert!(run_distributed(&spec, &LocalExecutor, 0, &ctx, &mut |_| {}).is_err());
    }
}
