//! Declarative scenario specifications and their text format.
//!
//! A [`ScenarioSpec`] describes a whole simulation campaign — the dataset
//! and trained architecture, the mesh topologies, the perturbation-plan
//! sweep, the deterministic hardware-effects grid, and the Monte-Carlo
//! budget/stopping rule. It serializes to a small INI-style text format
//! (`*.scn`), so every experiment is a reviewable artifact instead of a
//! hard-coded loop:
//!
//! ```text
//! # Fig. 4 / EXP 1: global uncertainty sweep
//! name = fig4
//! plan = global
//! topology = clements
//! seed = 7
//! iterations = 1000
//! min_iterations = 100
//! target_moe = 0.0
//! round_size = 32
//!
//! [dataset]
//! n_train = 3000
//! n_test = 1000
//! crop = 4
//!
//! [train]
//! layers = 16, 16, 16, 10
//! epochs = 40
//! batch_size = 32
//! learning_rate = 0.01
//! shuffle_singular_values = true
//!
//! [sweep]
//! mode = phs_only, bes_only, both
//! sigma = 0.0, 0.005, 0.01, 0.025, 0.05, 0.075, 0.1, 0.125, 0.15
//!
//! [effects]
//! quantization_bits = none
//! thermal_kappa = 0.0
//! thermal_decay_um = 60.0
//! mzi_loss_db = 0.0
//! ```
//!
//! Comma-separated values are sweep axes; the compiled work queue is the
//! cartesian product of every axis (see [`crate::queue::compile`]).

use spnn_core::{MeshTopology, Stage};
use spnn_photonics::PerturbTarget;
use std::fmt;

/// Which perturbation-plan family the scenario sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// One global `UncertaintySpec` on every MZI including Σ lines (EXP 1).
    Global,
    /// Global uncertainty on the unitary meshes only, Σ error-free.
    GlobalNoSigma,
    /// EXP 2 zonal plans: a hot 2×2 zone at `hot_sigma`, everything else at
    /// `base_sigma`, Σ error-free. Sweeps every zone of the selected
    /// meshes; the `[sweep]` axes are ignored.
    Zonal,
}

impl PlanKind {
    fn as_str(&self) -> &'static str {
        match self {
            PlanKind::Global => "global",
            PlanKind::GlobalNoSigma => "global-no-sigma",
            PlanKind::Zonal => "zonal",
        }
    }
}

/// Dataset parameters (see `spnn_dataset::DatasetConfig`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetParams {
    /// Training samples.
    pub n_train: usize,
    /// Test samples per accuracy evaluation.
    pub n_test: usize,
    /// Side of the central spectrum crop (features = `crop²`).
    pub crop: usize,
}

/// Software-training parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainParams {
    /// Layer widths, e.g. `[16, 16, 16, 10]` (first must equal `crop²`,
    /// last must equal the 10 dataset classes).
    pub layers: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Arrange singular values in seeded-random order (paper EXP 2).
    pub shuffle_singular_values: bool,
}

/// The `[sweep]` axes for global plans.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepParams {
    /// Perturbation targeting modes.
    pub modes: Vec<PerturbTarget>,
    /// Normalized σ values.
    pub sigmas: Vec<f64>,
}

/// The `[effects]` grid of deterministic hardware effects.
#[derive(Debug, Clone, PartialEq)]
pub struct EffectsGrid {
    /// Phase-DAC resolutions; `None` = continuous phases.
    pub quantization_bits: Vec<Option<u32>>,
    /// Thermal-crosstalk coupling strengths (`0` disables the model).
    pub thermal_kappa: Vec<f64>,
    /// Crosstalk decay length in µm (scalar — not an axis).
    pub thermal_decay_um: f64,
    /// Excess insertion loss per MZI in dB.
    pub mzi_loss_db: Vec<f64>,
}

/// Which layers a zonal sweep covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayerSelect {
    /// Every linear layer of the network.
    All,
    /// An explicit list of layer indices.
    List(Vec<usize>),
}

/// The `[zonal]` parameters (EXP 2).
#[derive(Debug, Clone, PartialEq)]
pub struct ZonalParams {
    /// σ outside the hot zone.
    pub base_sigma: f64,
    /// σ inside the hot zone.
    pub hot_sigma: f64,
    /// Which unitary multipliers to sweep (`UMesh` and/or `VMesh`).
    pub stages: Vec<Stage>,
    /// Which layers to sweep.
    pub layers: LayerSelect,
}

/// A complete, declarative simulation campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (used in reports and output file naming).
    pub name: String,
    /// Perturbation-plan family.
    pub plan: PlanKind,
    /// Mesh topologies to sweep.
    pub topologies: Vec<MeshTopology>,
    /// Master seed — the whole campaign is a pure function of the spec.
    pub seed: u64,
    /// Monte-Carlo iteration cap per sweep point (paper: 1000).
    pub iterations: usize,
    /// Iterations before adaptive early termination may trigger.
    pub min_iterations: usize,
    /// 95 % margin-of-error target; `0` disables early termination.
    pub target_moe: f64,
    /// Iterations per stopping-decision round. Stopping is only evaluated
    /// at round boundaries, which keeps results independent of the
    /// worker-thread count.
    pub round_size: usize,
    /// Dataset parameters.
    pub dataset: DatasetParams,
    /// Software-training parameters.
    pub train: TrainParams,
    /// Global-plan sweep axes.
    pub sweep: SweepParams,
    /// Deterministic hardware-effects grid.
    pub effects: EffectsGrid,
    /// Zonal parameters (used only when `plan = zonal`).
    pub zonal: ZonalParams,
}

impl Default for ScenarioSpec {
    /// The paper's EXP 1 configuration at full scale.
    fn default() -> Self {
        Self {
            name: "scenario".to_string(),
            plan: PlanKind::Global,
            topologies: vec![MeshTopology::Clements],
            seed: 7,
            iterations: 1000,
            min_iterations: 100,
            target_moe: 0.0,
            round_size: 32,
            dataset: DatasetParams {
                n_train: 3000,
                n_test: 1000,
                crop: 4,
            },
            train: TrainParams {
                layers: vec![16, 16, 16, 10],
                epochs: 40,
                batch_size: 32,
                learning_rate: 0.01,
                shuffle_singular_values: true,
            },
            sweep: SweepParams {
                modes: vec![
                    PerturbTarget::PhaseShiftersOnly,
                    PerturbTarget::BeamSplittersOnly,
                    PerturbTarget::Both,
                ],
                sigmas: spnn_core::exp1::PAPER_SIGMAS.to_vec(),
            },
            effects: EffectsGrid {
                quantization_bits: vec![None],
                thermal_kappa: vec![0.0],
                thermal_decay_um: 60.0,
                mzi_loss_db: vec![0.0],
            },
            zonal: ZonalParams {
                base_sigma: 0.05,
                hot_sigma: 0.1,
                stages: vec![Stage::UMesh, Stage::VMesh],
                layers: LayerSelect::All,
            },
        }
    }
}

/// Experiment-scale knobs read from the `SPNN_*` environment variables the
/// seed's harness binaries already honour, plus `SPNN_TARGET_MOE` for the
/// engine's adaptive stopping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunScale {
    /// Monte-Carlo iteration cap per sweep point.
    pub mc: usize,
    /// Training samples.
    pub n_train: usize,
    /// Test samples.
    pub n_test: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Master seed.
    pub seed: u64,
    /// 95 % margin-of-error target (`0` = fixed iteration count).
    pub target_moe: f64,
}

impl RunScale {
    /// Reads `SPNN_MC`, `SPNN_NTRAIN`, `SPNN_NTEST`, `SPNN_EPOCHS`,
    /// `SPNN_SEED` and `SPNN_TARGET_MOE` with the seed harness defaults.
    /// The paper-scale run is `SPNN_MC=1000 SPNN_NTEST=10000`.
    pub fn from_env() -> Self {
        fn read<T: std::str::FromStr>(name: &str, default: T) -> T {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
        Self {
            mc: read("SPNN_MC", 60),
            n_train: read("SPNN_NTRAIN", 3000),
            n_test: read("SPNN_NTEST", 1000),
            epochs: read("SPNN_EPOCHS", 40),
            seed: read("SPNN_SEED", 7),
            target_moe: read("SPNN_TARGET_MOE", 0.0),
        }
    }

    /// A miniature scale for tests and doctests: paper architecture,
    /// tiny dataset and iteration budget.
    pub fn tiny() -> Self {
        Self {
            mc: 4,
            n_train: 60,
            n_test: 30,
            epochs: 2,
            seed: 7,
            target_moe: 0.0,
        }
    }
}

/// A parse failure with its (1-based) line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line the error was detected on (0 for end-of-input checks).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Canonical topology label shared by the spec format, queue labels
/// and reports.
pub(crate) fn topology_name(t: MeshTopology) -> &'static str {
    match t {
        MeshTopology::Clements => "clements",
        MeshTopology::Reck => "reck",
    }
}

/// Canonical perturbation-mode label shared by the spec format, queue
/// labels and reports.
pub(crate) fn mode_name(m: PerturbTarget) -> &'static str {
    match m {
        PerturbTarget::PhaseShiftersOnly => "phs_only",
        PerturbTarget::BeamSplittersOnly => "bes_only",
        PerturbTarget::Both => "both",
    }
}

fn stage_name(s: Stage) -> &'static str {
    match s {
        Stage::UMesh => "u",
        Stage::VMesh => "v",
        Stage::Sigma => "sigma",
    }
}

fn join<T, F: Fn(&T) -> String>(items: &[T], f: F) -> String {
    items.iter().map(f).collect::<Vec<_>>().join(", ")
}

impl ScenarioSpec {
    /// Serializes to the canonical `*.scn` text form; parsing the result
    /// with [`ScenarioSpec::parse`] round-trips exactly.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("name = {}\n", self.name));
        s.push_str(&format!("plan = {}\n", self.plan.as_str()));
        s.push_str(&format!(
            "topology = {}\n",
            join(&self.topologies, |t| topology_name(*t).to_string())
        ));
        s.push_str(&format!("seed = {}\n", self.seed));
        s.push_str(&format!("iterations = {}\n", self.iterations));
        s.push_str(&format!("min_iterations = {}\n", self.min_iterations));
        s.push_str(&format!("target_moe = {}\n", self.target_moe));
        s.push_str(&format!("round_size = {}\n", self.round_size));

        s.push_str("\n[dataset]\n");
        s.push_str(&format!("n_train = {}\n", self.dataset.n_train));
        s.push_str(&format!("n_test = {}\n", self.dataset.n_test));
        s.push_str(&format!("crop = {}\n", self.dataset.crop));

        s.push_str("\n[train]\n");
        s.push_str(&format!(
            "layers = {}\n",
            join(&self.train.layers, |l| l.to_string())
        ));
        s.push_str(&format!("epochs = {}\n", self.train.epochs));
        s.push_str(&format!("batch_size = {}\n", self.train.batch_size));
        s.push_str(&format!("learning_rate = {}\n", self.train.learning_rate));
        s.push_str(&format!(
            "shuffle_singular_values = {}\n",
            self.train.shuffle_singular_values
        ));

        s.push_str("\n[sweep]\n");
        s.push_str(&format!(
            "mode = {}\n",
            join(&self.sweep.modes, |m| mode_name(*m).to_string())
        ));
        s.push_str(&format!(
            "sigma = {}\n",
            join(&self.sweep.sigmas, |x| x.to_string())
        ));

        s.push_str("\n[effects]\n");
        s.push_str(&format!(
            "quantization_bits = {}\n",
            join(&self.effects.quantization_bits, |b| match b {
                None => "none".to_string(),
                Some(bits) => bits.to_string(),
            })
        ));
        s.push_str(&format!(
            "thermal_kappa = {}\n",
            join(&self.effects.thermal_kappa, |x| x.to_string())
        ));
        s.push_str(&format!(
            "thermal_decay_um = {}\n",
            self.effects.thermal_decay_um
        ));
        s.push_str(&format!(
            "mzi_loss_db = {}\n",
            join(&self.effects.mzi_loss_db, |x| x.to_string())
        ));

        if self.plan == PlanKind::Zonal {
            s.push_str("\n[zonal]\n");
            s.push_str(&format!("base_sigma = {}\n", self.zonal.base_sigma));
            s.push_str(&format!("hot_sigma = {}\n", self.zonal.hot_sigma));
            s.push_str(&format!(
                "stage = {}\n",
                join(&self.zonal.stages, |st| stage_name(*st).to_string())
            ));
            s.push_str(&format!(
                "layer = {}\n",
                match &self.zonal.layers {
                    LayerSelect::All => "all".to_string(),
                    LayerSelect::List(v) => join(v, |l| l.to_string()),
                }
            ));
        }
        s
    }

    /// Parses the `*.scn` text format (see `docs/scenario-format.md` for
    /// the complete reference).
    ///
    /// Unknown keys and malformed values are errors (they are almost always
    /// typos that would otherwise silently fall back to defaults). Omitted
    /// keys keep their [`ScenarioSpec::default`] values — the paper's EXP 1
    /// configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use spnn_engine::ScenarioSpec;
    ///
    /// let spec = ScenarioSpec::parse(
    ///     "name = demo\n\
    ///      seed = 3\n\
    ///      [sweep]\n\
    ///      mode = both\n\
    ///      sigma = 0.0, 0.05\n",
    /// )?;
    /// assert_eq!(spec.name, "demo");
    /// assert_eq!(spec.sweep.sigmas, vec![0.0, 0.05]);
    /// // Serialization round-trips exactly.
    /// assert_eq!(ScenarioSpec::parse(&spec.to_text())?, spec);
    /// # Ok::<(), spnn_engine::ParseError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] carrying the offending line number.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let mut spec = ScenarioSpec::default();
        let mut section = String::new();
        let mut saw_zonal_section = false;

        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = match raw.find('#') {
                Some(p) => &raw[..p],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(err(lineno, "unterminated section header"));
                };
                section = name.trim().to_lowercase();
                if !matches!(
                    section.as_str(),
                    "dataset" | "train" | "sweep" | "effects" | "zonal"
                ) {
                    return Err(err(lineno, format!("unknown section [{section}]")));
                }
                if section == "zonal" {
                    saw_zonal_section = true;
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(lineno, format!("expected `key = value`, got {line:?}")));
            };
            let key = key.trim().to_lowercase();
            let value = value.trim();
            apply_key(&mut spec, &section, &key, value, lineno)?;
        }

        if spec.plan == PlanKind::Zonal && !saw_zonal_section {
            // The defaults are the paper's, so this is allowed — but a
            // zonal run with an accidental missing section is more likely
            // a mistake when sweep axes were customized instead.
            if spec.sweep.sigmas != ScenarioSpec::default().sweep.sigmas {
                return Err(err(
                    0,
                    "plan = zonal ignores [sweep]; found customized [sweep] but no [zonal] section",
                ));
            }
        }
        spec.validate().map_err(|m| err(0, m))?;
        Ok(spec)
    }

    /// Checks internal consistency (axis non-emptiness, architecture/crop
    /// agreement, stopping-rule sanity).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("name must be non-empty".into());
        }
        if self.name.contains('#') || self.name.contains('\n') {
            // '#' starts a comment in the text format, so such a name
            // would not survive the to_text()/parse() round trip.
            return Err("name must not contain '#' or newlines".into());
        }
        if self.target_moe > 0.0 && self.min_iterations < 2 {
            return Err(
                "adaptive stopping (target_moe > 0) needs min_iterations >= 2 \
                 (one sample has no variance estimate)"
                    .into(),
            );
        }
        if self.topologies.is_empty() {
            return Err("topology list must be non-empty".into());
        }
        if self.iterations == 0 {
            return Err("iterations must be positive".into());
        }
        if self.round_size == 0 {
            return Err("round_size must be positive".into());
        }
        if self.target_moe < 0.0 {
            return Err("target_moe must be non-negative".into());
        }
        if self.dataset.n_train == 0 || self.dataset.n_test == 0 {
            return Err("dataset sizes must be positive".into());
        }
        if self.train.layers.len() < 2 {
            return Err("layers must list at least input and output widths".into());
        }
        let d = self.dataset.crop * self.dataset.crop;
        if self.train.layers[0] != d {
            return Err(format!(
                "layers[0] = {} must equal crop² = {d}",
                self.train.layers[0]
            ));
        }
        if *self.train.layers.last().unwrap() != 10 {
            return Err("last layer width must be 10 (dataset classes)".into());
        }
        // NaN/inf pass naive `< 0.0` checks and would poison every sweep
        // point (and break JSON emission), so demand finite non-negative.
        let finite_nonneg = |x: f64| x.is_finite() && x >= 0.0;
        if !self.target_moe.is_finite() {
            return Err("target_moe must be finite".into());
        }
        if !finite_nonneg(self.train.learning_rate) || self.train.learning_rate == 0.0 {
            return Err("learning_rate must be finite and positive".into());
        }
        match self.plan {
            PlanKind::Global | PlanKind::GlobalNoSigma => {
                if self.sweep.modes.is_empty() || self.sweep.sigmas.is_empty() {
                    return Err("global plans need non-empty [sweep] mode and sigma axes".into());
                }
                if !self.sweep.sigmas.iter().all(|&s| finite_nonneg(s)) {
                    return Err("sigma values must be finite and non-negative".into());
                }
            }
            PlanKind::Zonal => {
                if self.zonal.stages.is_empty() {
                    return Err("zonal plans need at least one stage (u/v)".into());
                }
                if self.zonal.stages.contains(&Stage::Sigma) {
                    return Err("zonal plans target unitary meshes only (u/v)".into());
                }
                if !finite_nonneg(self.zonal.base_sigma) || !finite_nonneg(self.zonal.hot_sigma) {
                    return Err("zonal sigmas must be finite and non-negative".into());
                }
                // The layer count is fixed by the architecture, so explicit
                // layer lists can be bounds-checked statically — a typo'd
                // index should fail validation, not panic mid-run.
                if let LayerSelect::List(layers) = &self.zonal.layers {
                    if layers.is_empty() {
                        return Err("zonal layer list must be non-empty".into());
                    }
                    let n_layers = self.train.layers.len() - 1;
                    if let Some(&bad) = layers.iter().find(|&&l| l >= n_layers) {
                        return Err(format!(
                            "zonal layer {bad} out of range (architecture has {n_layers} linear layers)"
                        ));
                    }
                }
            }
        }
        if self.effects.quantization_bits.is_empty()
            || self.effects.thermal_kappa.is_empty()
            || self.effects.mzi_loss_db.is_empty()
        {
            return Err("effects axes must be non-empty".into());
        }
        if !self.effects.thermal_kappa.iter().all(|&k| finite_nonneg(k)) {
            return Err("thermal_kappa must be finite and non-negative".into());
        }
        if !self.effects.thermal_decay_um.is_finite() || self.effects.thermal_decay_um <= 0.0 {
            return Err("thermal_decay_um must be finite and positive".into());
        }
        if !self.effects.mzi_loss_db.iter().all(|&l| finite_nonneg(l)) {
            return Err("mzi_loss_db must be finite and non-negative".into());
        }
        Ok(())
    }
}

fn parse_scalar<T: std::str::FromStr>(
    value: &str,
    lineno: usize,
    what: &str,
) -> Result<T, ParseError> {
    value
        .parse()
        .map_err(|_| err(lineno, format!("invalid {what}: {value:?}")))
}

fn parse_list<T: std::str::FromStr>(
    value: &str,
    lineno: usize,
    what: &str,
) -> Result<Vec<T>, ParseError> {
    let items: Result<Vec<T>, _> = value.split(',').map(|v| v.trim().parse()).collect();
    let items = items.map_err(|_| err(lineno, format!("invalid {what} list: {value:?}")))?;
    if items.is_empty() {
        return Err(err(lineno, format!("{what} list must be non-empty")));
    }
    Ok(items)
}

fn apply_key(
    spec: &mut ScenarioSpec,
    section: &str,
    key: &str,
    value: &str,
    lineno: usize,
) -> Result<(), ParseError> {
    match (section, key) {
        ("", "name") => spec.name = value.to_string(),
        ("", "plan") => {
            spec.plan = match value {
                "global" => PlanKind::Global,
                "global-no-sigma" | "global_no_sigma" => PlanKind::GlobalNoSigma,
                "zonal" => PlanKind::Zonal,
                other => return Err(err(lineno, format!("unknown plan {other:?}"))),
            }
        }
        ("", "topology") => {
            spec.topologies = value
                .split(',')
                .map(|t| match t.trim() {
                    "clements" => Ok(MeshTopology::Clements),
                    "reck" => Ok(MeshTopology::Reck),
                    other => Err(err(lineno, format!("unknown topology {other:?}"))),
                })
                .collect::<Result<_, _>>()?
        }
        ("", "seed") => spec.seed = parse_scalar(value, lineno, "seed")?,
        ("", "iterations") => spec.iterations = parse_scalar(value, lineno, "iterations")?,
        ("", "min_iterations") => {
            spec.min_iterations = parse_scalar(value, lineno, "min_iterations")?
        }
        ("", "target_moe") => spec.target_moe = parse_scalar(value, lineno, "target_moe")?,
        ("", "round_size") => spec.round_size = parse_scalar(value, lineno, "round_size")?,

        ("dataset", "n_train") => spec.dataset.n_train = parse_scalar(value, lineno, "n_train")?,
        ("dataset", "n_test") => spec.dataset.n_test = parse_scalar(value, lineno, "n_test")?,
        ("dataset", "crop") => spec.dataset.crop = parse_scalar(value, lineno, "crop")?,

        ("train", "layers") => spec.train.layers = parse_list(value, lineno, "layers")?,
        ("train", "epochs") => spec.train.epochs = parse_scalar(value, lineno, "epochs")?,
        ("train", "batch_size") => {
            spec.train.batch_size = parse_scalar(value, lineno, "batch_size")?
        }
        ("train", "learning_rate") => {
            spec.train.learning_rate = parse_scalar(value, lineno, "learning_rate")?
        }
        ("train", "shuffle_singular_values") => {
            spec.train.shuffle_singular_values =
                parse_scalar(value, lineno, "shuffle_singular_values")?
        }

        ("sweep", "mode") => {
            spec.sweep.modes = value
                .split(',')
                .map(|m| match m.trim() {
                    "phs_only" | "phs" => Ok(PerturbTarget::PhaseShiftersOnly),
                    "bes_only" | "bes" => Ok(PerturbTarget::BeamSplittersOnly),
                    "both" => Ok(PerturbTarget::Both),
                    other => Err(err(lineno, format!("unknown mode {other:?}"))),
                })
                .collect::<Result<_, _>>()?
        }
        ("sweep", "sigma") => spec.sweep.sigmas = parse_list(value, lineno, "sigma")?,

        ("effects", "quantization_bits") => {
            spec.effects.quantization_bits = value
                .split(',')
                .map(|b| match b.trim() {
                    "none" | "off" => Ok(None),
                    other => other
                        .parse()
                        .map(Some)
                        .map_err(|_| err(lineno, format!("invalid bit count {other:?}"))),
                })
                .collect::<Result<_, _>>()?
        }
        ("effects", "thermal_kappa") => {
            spec.effects.thermal_kappa = parse_list(value, lineno, "thermal_kappa")?
        }
        ("effects", "thermal_decay_um") => {
            spec.effects.thermal_decay_um = parse_scalar(value, lineno, "thermal_decay_um")?
        }
        ("effects", "mzi_loss_db") => {
            spec.effects.mzi_loss_db = parse_list(value, lineno, "mzi_loss_db")?
        }

        ("zonal", "base_sigma") => {
            spec.zonal.base_sigma = parse_scalar(value, lineno, "base_sigma")?
        }
        ("zonal", "hot_sigma") => spec.zonal.hot_sigma = parse_scalar(value, lineno, "hot_sigma")?,
        ("zonal", "stage") => {
            spec.zonal.stages = value
                .split(',')
                .map(|s| match s.trim() {
                    "u" | "umesh" => Ok(Stage::UMesh),
                    "v" | "vmesh" | "vh" => Ok(Stage::VMesh),
                    other => Err(err(lineno, format!("unknown stage {other:?}"))),
                })
                .collect::<Result<_, _>>()?
        }
        ("zonal", "layer") => {
            spec.zonal.layers = if value == "all" {
                LayerSelect::All
            } else {
                LayerSelect::List(parse_list(value, lineno, "layer")?)
            }
        }

        (sec, k) => {
            let loc = if sec.is_empty() {
                "top level".to_string()
            } else {
                format!("section [{sec}]")
            };
            return Err(err(lineno, format!("unknown key {k:?} at {loc}")));
        }
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // specs are built by mutating defaults
mod tests {
    use super::*;

    #[test]
    fn default_spec_validates() {
        assert_eq!(ScenarioSpec::default().validate(), Ok(()));
    }

    #[test]
    fn text_round_trip_global() {
        let mut spec = ScenarioSpec::default();
        spec.name = "roundtrip".into();
        spec.topologies = vec![MeshTopology::Clements, MeshTopology::Reck];
        spec.target_moe = 0.015;
        spec.effects.quantization_bits = vec![None, Some(6), Some(4)];
        spec.effects.thermal_kappa = vec![0.0, 0.01];
        let text = spec.to_text();
        let parsed = ScenarioSpec::parse(&text).expect("parse own output");
        assert_eq!(parsed, spec);
    }

    #[test]
    fn text_round_trip_zonal() {
        let mut spec = ScenarioSpec::default();
        spec.plan = PlanKind::Zonal;
        spec.zonal.stages = vec![Stage::UMesh];
        spec.zonal.layers = LayerSelect::List(vec![0, 2]);
        let text = spec.to_text();
        assert!(text.contains("[zonal]"));
        let parsed = ScenarioSpec::parse(&text).expect("parse own output");
        assert_eq!(parsed, spec);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\
# a scenario\nname = c  # trailing comment\n\n[sweep]\nmode = both\nsigma = 0.0, 0.05\n";
        let spec = ScenarioSpec::parse(text).unwrap();
        assert_eq!(spec.name, "c");
        assert_eq!(spec.sweep.modes, vec![PerturbTarget::Both]);
        assert_eq!(spec.sweep.sigmas, vec![0.0, 0.05]);
    }

    #[test]
    fn unknown_key_is_an_error_with_line_number() {
        let e = ScenarioSpec::parse("name = x\nbogus = 1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"), "{}", e.message);
    }

    #[test]
    fn unknown_section_and_values_are_errors() {
        assert!(ScenarioSpec::parse("[nope]\n").is_err());
        assert!(ScenarioSpec::parse("plan = sideways\n").is_err());
        assert!(ScenarioSpec::parse("topology = moebius\n").is_err());
        assert!(ScenarioSpec::parse("[sweep]\nmode = diagonal\n").is_err());
        assert!(ScenarioSpec::parse("seed = banana\n").is_err());
    }

    #[test]
    fn validation_catches_inconsistent_architecture() {
        let mut spec = ScenarioSpec::default();
        spec.train.layers = vec![9, 10];
        assert!(spec.validate().unwrap_err().contains("crop"));
        spec.train.layers = vec![16, 8];
        assert!(spec.validate().unwrap_err().contains("10"));
    }

    #[test]
    fn validation_catches_bad_budgets() {
        let mut spec = ScenarioSpec::default();
        spec.iterations = 0;
        assert!(spec.validate().is_err());
        let mut spec = ScenarioSpec::default();
        spec.round_size = 0;
        assert!(spec.validate().is_err());
        let mut spec = ScenarioSpec::default();
        spec.sweep.sigmas = vec![-0.1];
        assert!(spec.validate().is_err());
    }

    #[test]
    fn validation_rejects_out_of_range_zonal_layers() {
        let mut spec = ScenarioSpec::default();
        spec.plan = PlanKind::Zonal;
        // 16-16-16-10 has 3 linear layers: indices 0..=2.
        spec.zonal.layers = LayerSelect::List(vec![0, 3]);
        assert!(spec.validate().unwrap_err().contains("out of range"));
        spec.zonal.layers = LayerSelect::List(vec![2]);
        assert_eq!(spec.validate(), Ok(()));
        spec.zonal.layers = LayerSelect::List(vec![]);
        assert!(spec.validate().is_err());
    }

    #[test]
    fn validation_rejects_non_finite_values() {
        // f64's FromStr accepts "NaN"/"inf", and NaN passes naive `< 0`
        // checks — validation must reject it explicitly.
        let spec = ScenarioSpec::parse("[sweep]\nsigma = NaN\n");
        assert!(spec.is_err(), "NaN sigma accepted");
        let spec = ScenarioSpec::parse("[sweep]\nsigma = inf\n");
        assert!(spec.is_err(), "inf sigma accepted");
        let spec = ScenarioSpec::parse("[effects]\nthermal_kappa = NaN\n");
        assert!(spec.is_err(), "NaN kappa accepted");
        let spec = ScenarioSpec::parse("target_moe = inf\n");
        assert!(spec.is_err(), "inf target_moe accepted");
    }

    #[test]
    fn zonal_with_custom_sweep_but_no_zonal_section_is_rejected() {
        let text = "plan = zonal\n[sweep]\nsigma = 0.2\n";
        assert!(ScenarioSpec::parse(text).is_err());
    }

    #[test]
    fn run_scale_tiny_is_small() {
        let s = RunScale::tiny();
        assert!(s.mc <= 8 && s.n_train <= 100 && s.n_test <= 50);
    }
}
