//! Built-in scenarios reproducing the paper's figures and the repo's
//! ablations.
//!
//! Each preset returns a full [`ScenarioSpec`]; the [`RunScale`] argument
//! carries the `SPNN_*` environment knobs so the same preset serves quick
//! smoke runs (`RunScale::tiny`) and paper-scale campaigns
//! (`SPNN_MC=1000 SPNN_NTEST=10000`). The checked-in `scenarios/*.scn`
//! files at the workspace root are the serialized form of these presets at
//! default scale — regenerate them with `spnn example <name>`.
//!
//! All presets share the paper's dataset, architecture and seed, so at any
//! one scale they share a single training [`crate::cache::Fingerprint`]:
//! running several of them through one cache (`spnn run a.scn b.scn …`, or
//! [`crate::run_scenarios`]) trains exactly once.

use crate::spec::{PlanKind, RunScale, ScenarioSpec};
use spnn_core::MeshTopology;
use spnn_photonics::PerturbTarget;

fn base(name: &str, scale: &RunScale) -> ScenarioSpec {
    let mut spec = ScenarioSpec {
        name: name.to_string(),
        seed: scale.seed,
        iterations: scale.mc,
        min_iterations: (scale.mc / 10).max(2).min(scale.mc),
        target_moe: scale.target_moe,
        ..ScenarioSpec::default()
    };
    spec.dataset.n_train = scale.n_train;
    spec.dataset.n_test = scale.n_test;
    spec.train.epochs = scale.epochs;
    spec
}

/// Fig. 4 / EXP 1 — global uncertainty sweep: three targeting modes over
/// the paper's σ grid, Σ lines included.
pub fn fig4(scale: &RunScale) -> ScenarioSpec {
    base("fig4", scale)
}

/// Fig. 5 / EXP 2 — zonal perturbations: every 2×2 zone of every unitary
/// multiplier heated to σ = 0.1 over a σ = 0.05 baseline, Σ error-free.
pub fn fig5(scale: &RunScale) -> ScenarioSpec {
    let mut spec = base("fig5", scale);
    spec.plan = PlanKind::Zonal;
    spec
}

/// Ablation A — Clements vs Reck topology robustness on the EXP 1 "both"
/// sweep.
pub fn mesh(scale: &RunScale) -> ScenarioSpec {
    let mut spec = base("ablation_mesh", scale);
    spec.topologies = vec![MeshTopology::Clements, MeshTopology::Reck];
    spec.sweep.modes = vec![PerturbTarget::Both];
    spec.sweep.sigmas = vec![0.0, 0.01, 0.025, 0.05, 0.075, 0.1];
    spec
}

/// Ablation B — phase-DAC quantization: bits × {no noise, the paper's
/// mature-process σ = 0.0334}.
///
/// Adaptive stopping is on by default (target moe 1 %): the σ = 0 points
/// are fully deterministic, so the engine proves a zero margin of error
/// after `min_iterations` and skips the rest of the budget.
pub fn quant(scale: &RunScale) -> ScenarioSpec {
    let mut spec = base("ablation_quant", scale);
    spec.sweep.modes = vec![PerturbTarget::Both];
    spec.sweep.sigmas = vec![0.0, 0.0334];
    spec.effects.quantization_bits = vec![
        Some(2),
        Some(3),
        Some(4),
        Some(5),
        Some(6),
        Some(8),
        Some(10),
    ];
    // The seed's binary capped the noisy column at 40 iterations.
    spec.iterations = scale.mc.min(40);
    if spec.target_moe == 0.0 {
        spec.target_moe = 0.01;
    }
    spec.min_iterations = 4.min(spec.iterations);
    spec.round_size = 8;
    spec
}

/// Ablation C — thermal-crosstalk coupling sweep (decay length 60 µm),
/// with and without the residual σ = 0.01 random noise.
///
/// Adaptive stopping is on by default (target moe 1 %), as in
/// [`quant`] — crosstalk without random noise is deterministic.
pub fn thermal(scale: &RunScale) -> ScenarioSpec {
    let mut spec = base("ablation_thermal", scale);
    spec.sweep.modes = vec![PerturbTarget::Both];
    spec.sweep.sigmas = vec![0.0, 0.01];
    spec.effects.thermal_kappa = vec![0.0, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05];
    spec.effects.thermal_decay_um = 60.0;
    spec.iterations = scale.mc.min(40);
    if spec.target_moe == 0.0 {
        spec.target_moe = 0.01;
    }
    spec.min_iterations = 4.min(spec.iterations);
    spec.round_size = 8;
    spec
}

/// Every preset by name (the `spnn example` / `--preset` vocabulary).
pub const PRESET_NAMES: [&str; 5] = ["fig4", "fig5", "mesh", "quant", "thermal"];

/// Looks up a preset builder by name.
pub fn by_name(name: &str, scale: &RunScale) -> Option<ScenarioSpec> {
    match name {
        "fig4" => Some(fig4(scale)),
        "fig5" => Some(fig5(scale)),
        "mesh" => Some(mesh(scale)),
        "quant" => Some(quant(scale)),
        "thermal" => Some(thermal(scale)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_validates_and_round_trips() {
        let scale = RunScale::tiny();
        for name in PRESET_NAMES {
            let spec = by_name(name, &scale).expect(name);
            assert_eq!(spec.validate(), Ok(()), "{name}");
            let reparsed = ScenarioSpec::parse(&spec.to_text()).expect(name);
            assert_eq!(reparsed, spec, "{name} round trip");
        }
        assert!(by_name("nope", &scale).is_none());
    }

    #[test]
    fn fig4_matches_the_paper_grid() {
        let spec = fig4(&RunScale::tiny());
        assert_eq!(spec.sweep.sigmas, spnn_core::exp1::PAPER_SIGMAS.to_vec());
        assert_eq!(spec.sweep.modes.len(), 3);
        assert_eq!(spec.plan, PlanKind::Global);
    }

    #[test]
    fn scale_flows_into_the_spec() {
        let mut scale = RunScale::tiny();
        scale.mc = 123;
        scale.n_test = 77;
        scale.target_moe = 0.02;
        let spec = fig4(&scale);
        assert_eq!(spec.iterations, 123);
        assert_eq!(spec.dataset.n_test, 77);
        assert_eq!(spec.target_moe, 0.02);
    }
}
