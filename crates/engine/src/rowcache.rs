//! Point-level result cache — the "scenario CDN".
//!
//! Every [`SweepRow`](crate::runner::SweepRow) is a pure function of the
//! spec (determinism items 1–9 in `docs/architecture.md`): iteration `k`
//! of a point derives its randomness from `(seed, k)` alone, and the
//! per-point seed is itself a pure function of the spec seed and the
//! point's *labels* (see [`crate::queue`]). Rows are therefore immutable,
//! content-addressable facts, and this module memoizes them:
//!
//! - [`RowKey`] — a 128-bit content address over everything that shapes a
//!   row's bytes: the training canonical, the evaluation-level spec fields
//!   (test-set size, stop rule, round size, singular-value shuffling,
//!   thermal decay, zonal sigmas), the topology, and the labels. Two specs
//!   that differ only in sweep extent share keys for their overlapping
//!   points, so a superset sweep only computes the delta.
//! - [`CachedPoint`] — the bit-lossless row payload: the point's retained
//!   raw samples plus its early-stop flag. The full adaptive-stop state
//!   round-trips by construction: a row is rebuilt from the samples with
//!   the same [`spnn_core::McResult::from_samples`] aggregation the cold
//!   path uses, so replay is bit-exact.
//! - [`RowManifest`] — the per-spec row index, keyed by the exact
//!   [`crate::shard::queue_fingerprint`]: scenario name, topology
//!   summaries, and the row keys in queue order. When a manifest and all
//!   its rows are present, a whole run replays from the store without
//!   preparing, training, or dispatching anything.
//! - [`RowCache`] — the two-tier store: an in-memory LRU always, plus an
//!   optional shared on-disk tier following the same versioned,
//!   checksummed, atomic tmp+rename, corruption-healing discipline as
//!   [`crate::cache`]. Invalidation is *never*: keys are content
//!   addresses, so a wrong entry can only come from corruption, which the
//!   checksum catches and heals by recompute.
//!
//! Payloads use the binary codec (every float as raw IEEE 754 bits), so
//! all 2⁶⁴ `f64` bit patterns — subnormals, infinities, NaN payloads —
//! survive the round trip exactly; the property tests at the bottom of
//! this file pin that.

use crate::cache::{
    gc_with_extension, Fingerprint, GcLimits, GcOutcome, LoadError, Reader, Writer,
};
use crate::fnv::{fnv1a64, FNV_BASIS};
use crate::metrics::{Counter, MetricsRegistry};
use crate::runner::TopologySummary;
use crate::spec::ScenarioSpec;
use crate::tevent;
use crate::trace::Level;
use spnn_core::KernelProfile;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Magic bytes opening every row-cache file.
const MAGIC: &[u8; 8] = b"SPNNROW\x01";
/// Binary format version; bump on any layout change. Files with another
/// version are ignored (recompute-on-load), never misread.
const FORMAT_VERSION: u32 = 1;
/// File extension of row-cache entries (rows and manifests alike).
pub const EXTENSION: &str = "spnnrow";

/// Record kind tag: a single cached sweep point.
const KIND_ROW: u8 = 0;
/// Record kind tag: a per-spec manifest.
const KIND_MANIFEST: u8 = 1;

/// Default capacity (entries) of the in-memory row tier.
const DEFAULT_MEM_ROWS: usize = 4096;
/// Capacity (entries) of the in-memory manifest tier.
const MEM_MANIFESTS: usize = 64;

// ---------------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------------

/// The content address of one sweep point's result: a 128-bit FNV-1a key
/// over the canonical description of everything that determines the row's
/// bytes, plus that canonical string itself (stored in row files and
/// compared on load, which makes hash collisions harmless).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RowKey {
    key: [u8; 16],
    canonical: String,
}

impl RowKey {
    fn of_canonical(canonical: String) -> Self {
        let a = fnv1a64(canonical.as_bytes(), FNV_BASIS);
        let b = fnv1a64(canonical.as_bytes(), 0x6c62272e07bb0142);
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&a.to_le_bytes());
        key[8..].copy_from_slice(&b.to_le_bytes());
        Self { key, canonical }
    }

    /// The 32-character lowercase hex key (the row file stem).
    pub fn hex(&self) -> String {
        let mut out = String::with_capacity(32);
        for b in &self.key {
            let _ = write!(out, "{b:02x}");
        }
        out
    }

    /// The canonical string the key hashes — a readable summary of every
    /// field that entered the address.
    pub fn canonical(&self) -> &str {
        &self.canonical
    }
}

/// The spec-level half of a [`RowKey`], computed once per run: every field
/// that shapes row bytes but is shared by all points of the spec. Combine
/// with a point's topology and labels via [`RowContext::key`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowContext {
    prefix: String,
}

impl RowContext {
    /// Builds the row-key context of a spec.
    ///
    /// Included: the trained-context canonical (dataset size/crop, master
    /// seed, architecture, training hyperparameters), the test-set size,
    /// singular-value shuffling, the stop rule and round size, the thermal
    /// decay length, and the zonal sigmas. Excluded: the sweep axes and
    /// topology list (the point's labels and topology carry its semantic
    /// identity), the scenario name, and everything execution-level —
    /// exactly the fields whose variation must *not* move existing rows.
    pub fn of_spec(spec: &ScenarioSpec) -> Self {
        Self::of_spec_with(spec, KernelProfile::Reference)
    }

    /// [`RowContext::of_spec`] scoped to a [`KernelProfile`].
    ///
    /// The kernel profile changes sample bits, so rows computed under
    /// different profiles are different content and must never share an
    /// address. Reference keys are exactly the historical `of_spec` keys
    /// (existing caches stay warm); the Fma profile appends a
    /// `;kernel=fma` component, carving out a disjoint key space.
    pub fn of_spec_with(spec: &ScenarioSpec, kernel: KernelProfile) -> Self {
        // `{}` on f64 prints the shortest representation that round-trips,
        // so distinct bit patterns of validated-finite fields get distinct
        // strings — the same convention as the spec text format itself.
        let mut prefix = format!(
            "spnn-row-v1;ctx={};n_test:{};shuffle:{};\
             stop=iterations:{},min:{},moe:{},round:{};\
             thermal_decay_um:{};zonal=base:{},hot:{}",
            Fingerprint::of_spec(spec).canonical(),
            spec.dataset.n_test,
            spec.train.shuffle_singular_values,
            spec.iterations,
            spec.min_iterations,
            spec.target_moe,
            spec.round_size,
            spec.effects.thermal_decay_um,
            spec.zonal.base_sigma,
            spec.zonal.hot_sigma,
        );
        if kernel != KernelProfile::Reference {
            prefix.push_str(";kernel=");
            prefix.push_str(kernel.as_str());
        }
        Self { prefix }
    }

    /// The full content address of one point: this context plus the
    /// point's topology and labels (the `key=value;` stream — the same
    /// bytes the per-point seed derivation hashes).
    pub fn key<K: AsRef<str>, V: AsRef<str>>(&self, topology: &str, labels: &[(K, V)]) -> RowKey {
        let mut canonical =
            String::with_capacity(self.prefix.len() + topology.len() + 16 * labels.len() + 32);
        canonical.push_str(&self.prefix);
        canonical.push_str(";topology=");
        canonical.push_str(topology);
        canonical.push_str(";labels=");
        for (k, v) in labels {
            canonical.push_str(k.as_ref());
            canonical.push('=');
            canonical.push_str(v.as_ref());
            canonical.push(';');
        }
        RowKey::of_canonical(canonical)
    }
}

fn parse_hex32(hex: &str) -> Option<[u8; 16]> {
    if hex.len() != 32 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    let mut key = [0u8; 16];
    for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
        let s = std::str::from_utf8(chunk).ok()?;
        key[i] = u8::from_str_radix(s, 16).ok()?;
    }
    Some(key)
}

// ---------------------------------------------------------------------------
// Payloads
// ---------------------------------------------------------------------------

/// The bit-lossless payload of one cached sweep point.
///
/// The raw retained samples *are* the adaptive-stop state: the cold path
/// builds its row as `McResult::from_samples(samples)` and so does replay,
/// so mean/std-dev/MoE come out bit-identical. `topology` and `labels`
/// are stored for integrity (a hit is cross-checked against the request)
/// and so manifests can rebuild full rows without the work queue.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedPoint {
    /// Topology the point ran on.
    pub topology: String,
    /// The point's labels, in queue order.
    pub labels: Vec<(String, String)>,
    /// Retained per-iteration accuracies (truncated at the adaptive stop
    /// boundary, exactly as the unsharded run retains them).
    pub samples: Vec<f64>,
    /// Whether the adaptive rule stopped the point before the cap.
    pub stopped_early: bool,
}

/// The per-spec row index: which rows, in which order, a spec's report is
/// assembled from. Keyed by the exact [`crate::shard::queue_fingerprint`],
/// so replay serves precisely the specs that already ran to completion.
#[derive(Debug, Clone, PartialEq)]
pub struct RowManifest {
    /// Scenario name (reports carry it).
    pub scenario: String,
    /// Per-topology summaries, in spec order.
    pub topologies: Vec<TopologySummary>,
    /// The 32-hex [`RowKey`] of every point, in queue order.
    pub row_keys: Vec<String>,
}

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------

fn serialize_row(key: &RowKey, point: &CachedPoint) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(MAGIC);
    w.u32(FORMAT_VERSION);
    w.u8(KIND_ROW);
    w.buf.extend_from_slice(&key.key);
    w.str(&key.canonical);
    w.str(&point.topology);
    w.u32(point.labels.len() as u32);
    for (k, v) in &point.labels {
        w.str(k);
        w.str(v);
    }
    w.f64s(&point.samples);
    w.u8(point.stopped_early as u8);
    let checksum = fnv1a64(&w.buf, FNV_BASIS);
    w.u64(checksum);
    w.buf
}

fn serialize_manifest(queue_fp: &str, manifest: &RowManifest) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(MAGIC);
    w.u32(FORMAT_VERSION);
    w.u8(KIND_MANIFEST);
    w.str(queue_fp);
    w.str(&manifest.scenario);
    w.u32(manifest.topologies.len() as u32);
    for t in &manifest.topologies {
        w.str(&t.topology);
        w.f64(t.software_accuracy);
        w.f64(t.nominal_accuracy);
    }
    w.u32(manifest.row_keys.len() as u32);
    for k in &manifest.row_keys {
        w.str(k);
    }
    let checksum = fnv1a64(&w.buf, FNV_BASIS);
    w.u64(checksum);
    w.buf
}

/// Shared header validation: checksum first (any later check assumes
/// intact bytes), then magic, version, and the expected kind tag. Returns
/// a reader positioned after the header.
fn open_record(bytes: &[u8], kind: u8) -> Result<Reader<'_>, LoadError> {
    if bytes.len() < MAGIC.len() + 4 + 1 + 8 {
        return Err(LoadError::Malformed("file too short"));
    }
    let (content, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().unwrap());
    if fnv1a64(content, FNV_BASIS) != stored {
        return Err(LoadError::BadChecksum);
    }
    let mut r = Reader::new(content);
    if r.take(MAGIC.len())? != MAGIC {
        return Err(LoadError::BadMagic);
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(LoadError::BadVersion(version));
    }
    if r.u8()? != kind {
        return Err(LoadError::Malformed("wrong record kind"));
    }
    Ok(r)
}

fn deserialize_row(bytes: &[u8]) -> Result<(RowKey, CachedPoint), LoadError> {
    let mut r = open_record(bytes, KIND_ROW)?;
    let mut key = [0u8; 16];
    key.copy_from_slice(r.take(16)?);
    let canonical = r.str()?;
    if RowKey::of_canonical(canonical.clone()).key != key {
        return Err(LoadError::FingerprintMismatch);
    }
    let topology = r.str()?;
    let n_labels = r.u32()? as usize;
    // Each label needs at least two length prefixes; cap before allocating.
    if n_labels > (r.buf.len() - r.pos) / 8 {
        return Err(LoadError::Malformed("implausible label count"));
    }
    let mut labels = Vec::with_capacity(n_labels);
    for _ in 0..n_labels {
        let k = r.str()?;
        let v = r.str()?;
        labels.push((k, v));
    }
    let samples = r.f64s()?;
    let stopped_early = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(LoadError::Malformed("bad stopped_early flag")),
    };
    if r.pos != r.buf.len() {
        return Err(LoadError::Malformed("trailing bytes"));
    }
    Ok((
        RowKey { key, canonical },
        CachedPoint {
            topology,
            labels,
            samples,
            stopped_early,
        },
    ))
}

fn deserialize_manifest(bytes: &[u8]) -> Result<(String, RowManifest), LoadError> {
    let mut r = open_record(bytes, KIND_MANIFEST)?;
    let queue_fp = r.str()?;
    if parse_hex32(&queue_fp).is_none() {
        return Err(LoadError::Malformed("bad queue fingerprint"));
    }
    let scenario = r.str()?;
    let n_topologies = r.u32()? as usize;
    if n_topologies > (r.buf.len() - r.pos) / 20 {
        return Err(LoadError::Malformed("implausible topology count"));
    }
    let mut topologies = Vec::with_capacity(n_topologies);
    for _ in 0..n_topologies {
        let topology = r.str()?;
        let software_accuracy = r.f64()?;
        let nominal_accuracy = r.f64()?;
        topologies.push(TopologySummary {
            topology,
            software_accuracy,
            nominal_accuracy,
        });
    }
    let n_rows = r.u32()? as usize;
    // Each row key is a length prefix plus 32 hex characters.
    if n_rows > (r.buf.len() - r.pos) / 36 {
        return Err(LoadError::Malformed("implausible row count"));
    }
    let mut row_keys = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let hex = r.str()?;
        if parse_hex32(&hex).is_none() {
            return Err(LoadError::Malformed("bad row key"));
        }
        row_keys.push(hex);
    }
    if r.pos != r.buf.len() {
        return Err(LoadError::Malformed("trailing bytes"));
    }
    Ok((
        queue_fp,
        RowManifest {
            scenario,
            topologies,
            row_keys,
        },
    ))
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// An in-memory LRU keyed by 128-bit row keys: a plain map plus a
/// monotonic access tick; eviction removes the smallest tick. O(n)
/// eviction is deliberate — capacities are small and hits are O(1).
#[derive(Debug)]
struct MemTier<V> {
    map: HashMap<[u8; 16], (u64, Arc<V>)>,
    tick: u64,
    capacity: usize,
}

impl<V> MemTier<V> {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            tick: 0,
            capacity,
        }
    }

    fn get(&mut self, key: &[u8; 16]) -> Option<Arc<V>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|slot| {
            slot.0 = tick;
            Arc::clone(&slot.1)
        })
    }

    /// Inserts and returns how many entries were evicted to fit.
    fn insert(&mut self, key: [u8; 16], value: Arc<V>) -> usize {
        self.tick += 1;
        self.map.insert(key, (self.tick, value));
        let mut evicted = 0;
        while self.map.len() > self.capacity.max(1) {
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, (tick, _))| *tick)
                .map(|(k, _)| *k)
                .expect("non-empty map");
            self.map.remove(&oldest);
            evicted += 1;
        }
        evicted
    }
}

/// Counter snapshot of a [`RowCache`], for tests and CLI summaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RowCacheStats {
    /// Row hits served from the in-memory tier.
    pub mem_hits: u64,
    /// Row hits served from the on-disk tier.
    pub disk_hits: u64,
    /// Row lookups that found nothing usable.
    pub misses: u64,
    /// Rows evicted from the in-memory tier.
    pub evictions: u64,
    /// Bytes written to the on-disk tier.
    pub bytes_written: u64,
    /// Corrupt or foreign files healed (removed for recompute).
    pub corrupt_healed: u64,
}

/// The two-tier row store. Cheap to share (`Arc` it into
/// [`crate::runner::EngineConfig::row_cache`]); all methods take `&self`.
///
/// Concurrent writers of the same row are benign: both produce identical
/// bytes (rows are pure functions of their key) and the tmp+rename
/// publish is atomic, so the last rename wins with the same content.
#[derive(Debug)]
pub struct RowCache {
    dir: Option<PathBuf>,
    rows: Mutex<MemTier<CachedPoint>>,
    manifests: Mutex<MemTier<RowManifest>>,
    mem_hits: Counter,
    disk_hits: Counter,
    misses: Counter,
    evictions: Counter,
    bytes_written: Counter,
    corrupt_healed: Counter,
}

impl RowCache {
    /// A store with the given on-disk tier (`None` = memory only).
    pub fn new(dir: Option<PathBuf>) -> Self {
        Self {
            dir,
            rows: Mutex::new(MemTier::new(DEFAULT_MEM_ROWS)),
            manifests: Mutex::new(MemTier::new(MEM_MANIFESTS)),
            mem_hits: Counter::new(),
            disk_hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
            bytes_written: Counter::new(),
            corrupt_healed: Counter::new(),
        }
    }

    /// A memory-only store (tests, `--no-row-cache` would rather disable
    /// the cache entirely, but serve-level dedup tests want a shared one).
    pub fn in_memory() -> Self {
        Self::new(None)
    }

    /// A store backed by `dir` (created lazily on first write).
    pub fn on_disk(dir: PathBuf) -> Self {
        Self::new(Some(dir))
    }

    /// Caps the in-memory row tier at `capacity` entries (builder style).
    pub fn with_mem_capacity(mut self, capacity: usize) -> Self {
        self.rows = Mutex::new(MemTier::new(capacity));
        self
    }

    /// The on-disk tier directory, if any.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    fn row_path(&self, hex: &str) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("row-{hex}.{EXTENSION}")))
    }

    fn manifest_path(&self, queue_fp: &str) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("man-{queue_fp}.{EXTENSION}")))
    }

    /// Looks a row up by key: memory first, then disk. Disk hits are
    /// adopted into the memory tier. Corrupt, version-skewed, or foreign
    /// files are removed so the recomputed row can republish cleanly.
    pub fn get(&self, key: &RowKey) -> Option<Arc<CachedPoint>> {
        self.get_bytes(&key.key, &key.hex())
    }

    /// [`RowCache::get`] addressed by the 32-hex key string (manifests
    /// store keys in this form). Returns `None` for malformed hex.
    pub fn get_by_hex(&self, hex: &str) -> Option<Arc<CachedPoint>> {
        let key = parse_hex32(hex)?;
        self.get_bytes(&key, hex)
    }

    fn get_bytes(&self, key: &[u8; 16], hex: &str) -> Option<Arc<CachedPoint>> {
        if let Some(hit) = self.rows.lock().unwrap().get(key) {
            self.mem_hits.inc();
            return Some(hit);
        }
        let Some(path) = self.row_path(hex) else {
            self.misses.inc();
            return None;
        };
        match load_record(&path, |bytes| {
            let (stored, point) = deserialize_row(bytes)?;
            if stored.key != *key {
                // A renamed file: its content belongs to another address.
                return Err(LoadError::FingerprintMismatch);
            }
            Ok(point)
        }) {
            Ok(point) => {
                self.disk_hits.inc();
                let point = Arc::new(point);
                let evicted = self.rows.lock().unwrap().insert(*key, Arc::clone(&point));
                self.evictions.add(evicted as u64);
                Some(point)
            }
            Err(e) => {
                self.heal(&path, &e);
                self.misses.inc();
                None
            }
        }
    }

    /// Publishes a row under its key: into the memory tier always, and to
    /// disk unless an entry already exists there (identical content by
    /// construction, so rewriting would be wasted I/O).
    pub fn put(&self, key: &RowKey, point: CachedPoint) {
        let point = Arc::new(point);
        let evicted = self
            .rows
            .lock()
            .unwrap()
            .insert(key.key, Arc::clone(&point));
        self.evictions.add(evicted as u64);
        if let Some(path) = self.row_path(&key.hex()) {
            if !path.exists() {
                self.persist(&path, serialize_row(key, &point));
            }
        }
    }

    /// Looks a manifest up by queue fingerprint: memory, then disk.
    pub fn get_manifest(&self, queue_fp: &str) -> Option<Arc<RowManifest>> {
        let key = parse_hex32(queue_fp)?;
        if let Some(hit) = self.manifests.lock().unwrap().get(&key) {
            return Some(hit);
        }
        let path = self.manifest_path(queue_fp)?;
        match load_record(&path, |bytes| {
            let (stored_fp, manifest) = deserialize_manifest(bytes)?;
            if stored_fp != queue_fp {
                return Err(LoadError::FingerprintMismatch);
            }
            Ok(manifest)
        }) {
            Ok(manifest) => {
                let manifest = Arc::new(manifest);
                self.manifests
                    .lock()
                    .unwrap()
                    .insert(key, Arc::clone(&manifest));
                Some(manifest)
            }
            Err(e) => {
                self.heal(&path, &e);
                None
            }
        }
    }

    /// Publishes a completed run's manifest under its queue fingerprint.
    /// Ignores fingerprints that are not 32 hex characters.
    pub fn put_manifest(&self, queue_fp: &str, manifest: RowManifest) {
        let Some(key) = parse_hex32(queue_fp) else {
            return;
        };
        let manifest = Arc::new(manifest);
        self.manifests
            .lock()
            .unwrap()
            .insert(key, Arc::clone(&manifest));
        if let Some(path) = self.manifest_path(queue_fp) {
            if !path.exists() {
                self.persist(&path, serialize_manifest(queue_fp, &manifest));
            }
        }
    }

    /// Atomic tmp+rename publish, mirroring [`crate::cache`]: a reader
    /// never observes a half-written file, and concurrent writers of
    /// identical content race harmlessly.
    fn persist(&self, path: &Path, bytes: Vec<u8>) {
        let Some(dir) = path.parent() else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let stem = path.file_name().and_then(|n| n.to_str()).unwrap_or("row");
        let tmp = dir.join(format!(".tmp-{}-{}", std::process::id(), stem));
        let n = bytes.len() as u64;
        if std::fs::write(&tmp, &bytes).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        if std::fs::rename(&tmp, path).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        self.bytes_written.add(n);
    }

    /// Removes an unusable file so the recomputed entry republishes over
    /// it. Plain misses ([`LoadError::NotFound`]) are not corruption.
    fn heal(&self, path: &Path, e: &LoadError) {
        if matches!(e, LoadError::NotFound) {
            return;
        }
        tevent!(
            Level::Warn,
            "rowcache",
            "removing unusable row-cache file",
            path = &path.display().to_string(),
            error = &format!("{e}"),
        );
        let _ = std::fs::remove_file(path);
        self.corrupt_healed.inc();
    }

    /// A snapshot of the store's counters.
    pub fn stats(&self) -> RowCacheStats {
        RowCacheStats {
            mem_hits: self.mem_hits.get(),
            disk_hits: self.disk_hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            bytes_written: self.bytes_written.get(),
            corrupt_healed: self.corrupt_healed.get(),
        }
    }

    /// Registers the store's counters in `registry` under the
    /// `spnn_rowcache_*` names; past and future increments both show.
    pub fn register_metrics(&self, registry: &MetricsRegistry) {
        registry.register_counter(
            "spnn_rowcache_hits_total",
            "Row-cache hits by tier.",
            &[("tier", "memory")],
            &self.mem_hits,
        );
        registry.register_counter(
            "spnn_rowcache_hits_total",
            "Row-cache hits by tier.",
            &[("tier", "disk")],
            &self.disk_hits,
        );
        registry.register_counter(
            "spnn_rowcache_misses_total",
            "Row lookups that found nothing usable.",
            &[],
            &self.misses,
        );
        registry.register_counter(
            "spnn_rowcache_evictions_total",
            "Rows evicted from the in-memory tier.",
            &[],
            &self.evictions,
        );
        registry.register_counter(
            "spnn_rowcache_bytes_written_total",
            "Bytes written to the on-disk row tier.",
            &[],
            &self.bytes_written,
        );
        registry.register_counter(
            "spnn_rowcache_corrupt_healed_total",
            "Corrupt row-cache files healed by recompute.",
            &[],
            &self.corrupt_healed,
        );
    }
}

fn load_record<T>(
    path: &Path,
    parse: impl FnOnce(&[u8]) -> Result<T, LoadError>,
) -> Result<T, LoadError> {
    let bytes = std::fs::read(path).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            LoadError::NotFound
        } else {
            LoadError::Io(e.to_string())
        }
    })?;
    parse(&bytes)
}

// ---------------------------------------------------------------------------
// CLI support (spnn rowcache {ls,rm,gc,path})
// ---------------------------------------------------------------------------

/// The row-cache directory the `spnn` CLI uses by default:
/// `$SPNN_ROW_CACHE_DIR`, else `$XDG_CACHE_HOME/spnn/rows`, else
/// `$HOME/.cache/spnn/rows`, else `./.spnn-rowcache`.
pub fn default_row_cache_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("SPNN_ROW_CACHE_DIR") {
        return PathBuf::from(dir);
    }
    if let Some(xdg) = std::env::var_os("XDG_CACHE_HOME") {
        if !xdg.is_empty() {
            return PathBuf::from(xdg).join("spnn").join("rows");
        }
    }
    if let Some(home) = std::env::var_os("HOME") {
        if !home.is_empty() {
            return PathBuf::from(home).join(".cache").join("spnn").join("rows");
        }
    }
    PathBuf::from(".spnn-rowcache")
}

/// What `spnn rowcache ls` shows for one store file.
#[derive(Debug, Clone)]
pub struct RowEntry {
    /// Full path of the file.
    pub path: PathBuf,
    /// The 32-hex-character key from the file name.
    pub key_hex: String,
    /// `"row"` or `"manifest"` (from the file-name prefix).
    pub kind: &'static str,
    /// A short human summary (`"12 samples"` / `"9 points"`), when the
    /// file parses cleanly.
    pub detail: Option<String>,
    /// File size in bytes.
    pub size_bytes: u64,
    /// `false` when the file is corrupt or from another format version
    /// (such entries are recompute-on-load and safe to remove).
    pub ok: bool,
}

/// Lists the row-store files under `dir` (sorted by file name). A missing
/// directory lists as empty rather than erroring.
///
/// # Errors
///
/// Returns the underlying I/O error if the directory exists but cannot be
/// read.
pub fn list_entries(dir: &Path) -> std::io::Result<Vec<RowEntry>> {
    let mut out = Vec::new();
    let rd = match std::fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in rd {
        let entry = entry?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some(EXTENSION) {
            continue;
        }
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
        let (kind, key_hex) = match (stem.strip_prefix("row-"), stem.strip_prefix("man-")) {
            (Some(hex), _) => ("row", hex.to_string()),
            (_, Some(hex)) => ("manifest", hex.to_string()),
            _ => ("row", String::new()),
        };
        let size_bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
        let detail = std::fs::read(&path).ok().and_then(|bytes| match kind {
            "row" => deserialize_row(&bytes)
                .ok()
                .map(|(_, p)| format!("{} samples", p.samples.len())),
            _ => deserialize_manifest(&bytes)
                .ok()
                .map(|(_, m)| format!("{} points", m.row_keys.len())),
        });
        let ok = detail.is_some();
        out.push(RowEntry {
            path,
            key_hex,
            kind,
            detail,
            size_bytes,
            ok,
        });
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

/// Evicts row-store files least-recently-written-first until the store
/// fits `limits`, and sweeps stale `.tmp-*` files — the exact policy of
/// [`crate::cache::gc`], applied to `.spnnrow` entries. Rows are
/// deterministic recompute-on-miss artifacts, so eviction can cost time
/// but never correctness.
///
/// # Errors
///
/// Returns the underlying I/O error if the directory or an entry cannot
/// be read or removed (vanished files are tolerated).
pub fn gc(dir: &Path, limits: &GcLimits) -> std::io::Result<GcOutcome> {
    gc_with_extension(dir, limits, EXTENSION)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use spnn_core::McResult;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("spnn-rowcache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn point(samples: Vec<f64>, stopped_early: bool) -> CachedPoint {
        CachedPoint {
            topology: "clements".into(),
            labels: vec![
                ("mode".into(), "both".into()),
                ("sigma".into(), "0.05".into()),
            ],
            samples,
            stopped_early,
        }
    }

    fn key_for(point: &CachedPoint) -> RowKey {
        let ctx = RowContext::of_spec(&ScenarioSpec::default());
        ctx.key(&point.topology, &point.labels)
    }

    #[test]
    fn row_keys_are_content_addresses() {
        let spec = ScenarioSpec::default();
        let ctx = RowContext::of_spec(&spec);
        let labels = [("mode", "both"), ("sigma", "0.05")];
        let a = ctx.key("clements", &labels);
        let b = ctx.key("clements", &labels);
        assert_eq!(a, b);
        assert_eq!(a.hex().len(), 32);
        assert_ne!(a, ctx.key("reck", &labels));
        assert_ne!(
            a,
            ctx.key("clements", &[("mode", "both"), ("sigma", "0.1")])
        );
    }

    #[test]
    fn superset_specs_share_row_keys() {
        // Extending a sweep axis must not move existing row addresses —
        // that is what makes delta-only computation possible.
        let base = ScenarioSpec::default();
        let mut superset = base.clone();
        superset.sweep.sigmas.push(0.2);
        superset.name = "another-name".into();
        let labels = [("mode", "both"), ("sigma", "0.05")];
        assert_eq!(
            RowContext::of_spec(&base).key("clements", &labels),
            RowContext::of_spec(&superset).key("clements", &labels),
        );
        // Evaluation-relevant fields DO move the address.
        let mut other = base.clone();
        other.dataset.n_test += 1;
        assert_ne!(
            RowContext::of_spec(&base).key("clements", &labels),
            RowContext::of_spec(&other).key("clements", &labels),
        );
    }

    #[test]
    fn row_keys_are_kernel_profile_scoped() {
        let spec = ScenarioSpec::default();
        let labels = [("mode", "both"), ("sigma", "0.05")];
        let reference = RowContext::of_spec_with(&spec, KernelProfile::Reference);
        let fma = RowContext::of_spec_with(&spec, KernelProfile::Fma);
        assert_ne!(
            reference.key("clements", &labels),
            fma.key("clements", &labels),
            "profiles must never share a row address"
        );
        // Reference keys are the historical of_spec keys.
        assert_eq!(
            reference.key("clements", &labels),
            RowContext::of_spec(&spec).key("clements", &labels),
        );
        // A row cached under one profile is invisible to the other.
        let cache = RowCache::in_memory();
        let p = point(vec![0.5, 0.625, 0.75], false);
        cache.put(&reference.key("clements", &labels), p);
        assert!(cache.get(&fma.key("clements", &labels)).is_none());
    }

    #[test]
    fn memory_tier_round_trips_and_counts() {
        let cache = RowCache::in_memory();
        let p = point(vec![0.5, 0.625, 0.75], false);
        let key = key_for(&p);
        assert!(cache.get(&key).is_none());
        cache.put(&key, p.clone());
        assert_eq!(*cache.get(&key).unwrap(), p);
        let stats = cache.stats();
        assert_eq!((stats.mem_hits, stats.misses), (1, 1));
    }

    #[test]
    fn disk_tier_round_trips_across_instances() {
        let dir = tmp_dir("disk");
        let p = point(vec![0.25, 0.5], true);
        let key = key_for(&p);
        let writer = RowCache::on_disk(dir.clone());
        writer.put(&key, p.clone());
        assert!(writer.stats().bytes_written > 0);

        let reader = RowCache::on_disk(dir.clone());
        assert_eq!(*reader.get(&key).unwrap(), p);
        assert_eq!(reader.stats().disk_hits, 1);
        // Second hit comes from the adopted memory tier.
        assert_eq!(*reader.get(&key).unwrap(), p);
        assert_eq!(reader.stats().mem_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = RowCache::in_memory().with_mem_capacity(2);
        let ctx = RowContext::of_spec(&ScenarioSpec::default());
        let keys: Vec<RowKey> = (0..3)
            .map(|i| ctx.key("clements", &[("sigma", format!("{i}"))]))
            .collect();
        cache.put(&keys[0], point(vec![0.1], false));
        cache.put(&keys[1], point(vec![0.2], false));
        // Touch key 0 so key 1 is the LRU victim.
        assert!(cache.get(&keys[0]).is_some());
        cache.put(&keys[2], point(vec![0.3], false));
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(&keys[0]).is_some());
        assert!(cache.get(&keys[1]).is_none());
        assert!(cache.get(&keys[2]).is_some());
    }

    #[test]
    fn corrupt_files_heal_by_removal() {
        let dir = tmp_dir("heal");
        let p = point(vec![0.5, 0.75], false);
        let key = key_for(&p);
        let path = dir.join(format!("row-{}.{EXTENSION}", key.hex()));

        // Truncation.
        {
            let cache = RowCache::on_disk(dir.clone());
            cache.put(&key, p.clone());
            let bytes = std::fs::read(&path).unwrap();
            std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
            let fresh = RowCache::on_disk(dir.clone());
            assert!(fresh.get(&key).is_none());
            assert_eq!(fresh.stats().corrupt_healed, 1);
            assert!(!path.exists(), "truncated file must be removed");
        }
        // Bit flip.
        {
            let cache = RowCache::on_disk(dir.clone());
            cache.put(&key, p.clone());
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
            let fresh = RowCache::on_disk(dir.clone());
            assert!(fresh.get(&key).is_none());
            assert!(!path.exists(), "bit-flipped file must be removed");
        }
        // Version skew (checksum recomputed so only the version differs).
        {
            let mut bytes = serialize_row(&key, &p);
            bytes[8] = 0xFF; // first byte of the little-endian version
            let content_len = bytes.len() - 8;
            let sum = crate::fnv::fnv1a64(&bytes[..content_len], crate::fnv::FNV_BASIS);
            bytes[content_len..].copy_from_slice(&sum.to_le_bytes());
            std::fs::write(&path, &bytes).unwrap();
            let fresh = RowCache::on_disk(dir.clone());
            assert!(fresh.get(&key).is_none());
            assert!(!path.exists(), "version-skewed file must be removed");
        }
        // After healing, a republish round-trips again.
        let cache = RowCache::on_disk(dir.clone());
        cache.put(&key, p.clone());
        let fresh = RowCache::on_disk(dir.clone());
        assert_eq!(*fresh.get(&key).unwrap(), p);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn renamed_files_are_foreign_and_heal() {
        let dir = tmp_dir("rename");
        let cache = RowCache::on_disk(dir.clone());
        let p = point(vec![0.5], false);
        let key = key_for(&p);
        cache.put(&key, p);
        let ctx = RowContext::of_spec(&ScenarioSpec::default());
        let other = ctx.key("reck", &[("sigma", "0.9")]);
        let from = dir.join(format!("row-{}.{EXTENSION}", key.hex()));
        let to = dir.join(format!("row-{}.{EXTENSION}", other.hex()));
        std::fs::rename(&from, &to).unwrap();
        let fresh = RowCache::on_disk(dir.clone());
        assert!(fresh.get(&other).is_none());
        assert_eq!(fresh.stats().corrupt_healed, 1);
        assert!(!to.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifests_round_trip_and_validate() {
        let dir = tmp_dir("manifest");
        let cache = RowCache::on_disk(dir.clone());
        let fp = "0123456789abcdef0123456789abcdef";
        let manifest = RowManifest {
            scenario: "fig4".into(),
            topologies: vec![TopologySummary {
                topology: "clements".into(),
                software_accuracy: 0.9375,
                nominal_accuracy: f64::MIN_POSITIVE,
            }],
            row_keys: vec!["f".repeat(32), "0".repeat(32)],
        };
        cache.put_manifest(fp, manifest.clone());
        let fresh = RowCache::on_disk(dir.clone());
        assert_eq!(*fresh.get_manifest(fp).unwrap(), manifest);
        assert!(fresh.get_manifest("f".repeat(32).as_str()).is_none());
        assert!(fresh.get_manifest("not-hex").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_caps_entries_and_sweeps_stale_tmp_files() {
        let dir = tmp_dir("gc");
        let cache = RowCache::on_disk(dir.clone());
        let ctx = RowContext::of_spec(&ScenarioSpec::default());
        for i in 0..5 {
            let p = point(vec![0.1 * f64::from(i)], false);
            cache.put(&ctx.key("clements", &[("sigma", format!("{i}"))]), p);
        }
        // A stale crashed-writer leftover (mtime pushed past the grace
        // period) and a fresh one (must survive).
        let stale = dir.join(".tmp-999-row-stale");
        let fresh = dir.join(".tmp-999-row-fresh");
        std::fs::write(&stale, b"junk").unwrap();
        std::fs::write(&fresh, b"junk").unwrap();
        let old = std::time::SystemTime::now() - std::time::Duration::from_secs(3600);
        set_mtime(&stale, old);

        let outcome = gc(
            &dir,
            &GcLimits {
                max_entries: Some(2),
                max_bytes: None,
            },
        )
        .unwrap();
        assert_eq!(outcome.kept, 2);
        assert!(
            outcome.removed >= 4,
            "3 rows + 1 stale tmp; got {outcome:?}"
        );
        assert!(!stale.exists());
        assert!(fresh.exists(), "in-flight tmp files must survive gc");
        assert_eq!(
            list_entries(&dir).unwrap().len(),
            2,
            "entry cap must hold after gc"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn set_mtime(path: &Path, t: std::time::SystemTime) {
        std::fs::File::options()
            .write(true)
            .open(path)
            .and_then(|f| f.set_modified(t))
            .expect("set mtime");
    }

    // -----------------------------------------------------------------
    // Property tests: the payload codec is bit-lossless.
    // -----------------------------------------------------------------

    /// All 2⁶⁴ bit patterns: subnormals, ±inf, every NaN payload.
    fn any_f64_bits() -> impl Strategy<Value = f64> {
        (0u64..u64::MAX).prop_map(f64::from_bits)
    }

    fn any_label() -> impl Strategy<Value = (String, String)> {
        // Non-ASCII keys and values: sweep labels are arbitrary UTF-8.
        (0u32..5, 0u32..5).prop_map(|(k, v)| {
            let alphabet = ["σ", "zoné", "混合", "ß", "norm"];
            (
                format!("k-{}", alphabet[k as usize]),
                format!("v-{}", alphabet[v as usize]),
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn row_payloads_round_trip_bit_exactly(
            samples in proptest::collection::vec(any_f64_bits(), 1..40),
            labels in proptest::collection::vec(any_label(), 1..4),
            stopped_early in (0u8..2).prop_map(|b| b == 1),
            topology_pick in 0u8..2,
        ) {
            let point = CachedPoint {
                topology: if topology_pick == 0 { "clements" } else { "реck-∅" }.to_string(),
                labels,
                samples,
                stopped_early,
            };
            let key = key_for(&point);
            let bytes = serialize_row(&key, &point);
            let (key2, point2) = deserialize_row(&bytes).expect("own bytes parse");
            prop_assert_eq!(&key2, &key);
            prop_assert_eq!(point2.topology, point.topology.clone());
            prop_assert_eq!(&point2.labels, &point.labels);
            prop_assert_eq!(point2.stopped_early, point.stopped_early);
            prop_assert_eq!(point2.samples.len(), point.samples.len());
            for (a, b) in point2.samples.iter().zip(&point.samples) {
                // Bit equality, not float equality: NaN payloads and
                // signed zeros must survive.
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn rebuilt_rows_and_welford_state_match_bit_exactly(
            samples in proptest::collection::vec(0.0f64..1.0, 2..50),
        ) {
            // The round-tripped samples must reproduce the exact row
            // statistics and Welford state the cold path computed.
            let point = point(samples.clone(), false);
            let key = key_for(&point);
            let bytes = serialize_row(&key, &point);
            let (_, back) = deserialize_row(&bytes).expect("parse");

            let cold = McResult::from_samples(samples.clone());
            let warm = McResult::from_samples(back.samples.clone());
            prop_assert_eq!(warm.mean.to_bits(), cold.mean.to_bits());
            prop_assert_eq!(warm.std_dev.to_bits(), cold.std_dev.to_bits());
            prop_assert_eq!(
                warm.margin_of_error_95().to_bits(),
                cold.margin_of_error_95().to_bits()
            );

            let mut cold_w = crate::estimator::Welford::new();
            let mut warm_w = crate::estimator::Welford::new();
            for &s in &samples {
                cold_w.push(s);
            }
            for &s in &back.samples {
                warm_w.push(s);
            }
            let (cn, cm, cm2) = cold_w.parts();
            let (wn, wm, wm2) = warm_w.parts();
            prop_assert_eq!(cn, wn);
            prop_assert_eq!(cm.to_bits(), wm.to_bits());
            prop_assert_eq!(cm2.to_bits(), wm2.to_bits());
        }

        #[test]
        fn manifests_round_trip_bit_exactly(
            accuracies in proptest::collection::vec((any_f64_bits(), any_f64_bits()), 1..3),
            n_rows in 0usize..6,
        ) {
            let manifest = RowManifest {
                scenario: "propté-混合".into(),
                topologies: accuracies
                    .iter()
                    .enumerate()
                    .map(|(i, &(sw, nom))| TopologySummary {
                        topology: format!("t{i}"),
                        software_accuracy: sw,
                        nominal_accuracy: nom,
                    })
                    .collect(),
                row_keys: (0..n_rows).map(|i| format!("{i:032x}")).collect(),
            };
            let fp = "00112233445566778899aabbccddeeff";
            let bytes = serialize_manifest(fp, &manifest);
            let (fp2, back) = deserialize_manifest(&bytes).expect("parse");
            prop_assert_eq!(fp2.as_str(), fp);
            prop_assert_eq!(back.scenario, manifest.scenario.clone());
            prop_assert_eq!(back.row_keys, manifest.row_keys.clone());
            prop_assert_eq!(back.topologies.len(), manifest.topologies.len());
            for (a, b) in back.topologies.iter().zip(&manifest.topologies) {
                prop_assert_eq!(&a.topology, &b.topology);
                prop_assert_eq!(a.software_accuracy.to_bits(), b.software_accuracy.to_bits());
                prop_assert_eq!(a.nominal_accuracy.to_bits(), b.nominal_accuracy.to_bits());
            }
        }

        #[test]
        fn corrupted_bytes_never_parse(
            flip in 0usize..64,
        ) {
            let p = point(vec![0.5, 0.625, 0.75], true);
            let key = key_for(&p);
            let mut bytes = serialize_row(&key, &p);
            let idx = flip % bytes.len();
            bytes[idx] ^= 0x01;
            // Any single-bit flip must be rejected, never silently
            // misread (the checksum covers every content byte; a flip in
            // the trailer itself also mismatches).
            prop_assert!(deserialize_row(&bytes).is_err());
        }
    }
}
