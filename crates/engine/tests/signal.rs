//! Graceful-shutdown signal tests, quarantined in their own test binary:
//! raising SIGTERM sets a process-wide flag, so these must not share a
//! process with tests that poll [`CancelToken`]s.
//!
//! Covers the satellite acceptance: `spnn serve` under SIGTERM stops
//! accepting, finishes the in-flight stream, and exits cleanly (status
//! 0), and the in-process flag plumbing (`install_signal_handlers` →
//! `process_shutdown_requested` → every `CancelToken`).

#![cfg(unix)]

use spnn_engine::prelude::*;
use spnn_photonics::PerturbTarget;
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

extern "C" {
    fn raise(sig: i32) -> i32;
}
const SIGTERM: i32 = 15;

/// The flag plumbing, in-process: after installing handlers, SIGTERM no
/// longer kills the process — it trips the shutdown flag every
/// `CancelToken` observes.
#[test]
fn sigterm_trips_the_process_flag_and_every_token() {
    let token = spnn_engine::exec::CancelToken::new();
    assert!(!token.is_cancelled());
    assert!(
        spnn_engine::exec::install_signal_handlers(),
        "handler installation must succeed on Unix"
    );
    // SAFETY: raising a signal we just installed a handler for.
    assert_eq!(unsafe { raise(SIGTERM) }, 0);
    assert!(spnn_engine::exec::process_shutdown_requested());
    assert!(
        token.is_cancelled(),
        "tokens observe the process-wide shutdown flag"
    );
}

fn spec_text() -> String {
    let mut spec = presets::fig4(&RunScale::tiny());
    spec.sweep.modes = vec![PerturbTarget::Both];
    spec.sweep.sigmas = vec![0.0, 0.05, 0.1];
    spec.iterations = 64;
    spec.min_iterations = 2;
    spec.round_size = 8;
    spec.to_text()
}

/// The full binary: `spnn serve` + an in-flight `POST /run` + SIGTERM.
/// The stream must complete (done event) and the process must exit 0,
/// whether the signal lands mid-run or just after.
#[test]
fn spnn_serve_drains_in_flight_stream_on_sigterm() {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_spnn"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--no-cache",
        ])
        .env_remove("SPNN_THREADS")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn spnn serve");

    // The service logs its ephemeral address on stderr; keep draining the
    // pipe afterwards so the child never blocks on a full pipe.
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve must announce its address")
            .expect("readable stderr");
        if let Some(rest) = line.split("serving on http://").nth(1) {
            break rest.trim().to_string();
        }
    };
    std::thread::spawn(move || for _ in lines.by_ref() {});

    // Start a run and give it a beat to be in flight.
    let spec = spec_text();
    let request_addr = addr.clone();
    let request = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(&request_addr).expect("connect");
        write!(
            stream,
            "POST /run HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
            spec.len(),
            spec
        )
        .expect("send request");
        let mut body = String::new();
        stream.read_to_string(&mut body).expect("read stream");
        body
    });
    std::thread::sleep(Duration::from_millis(300));

    // SIGTERM: drain and exit — never abort the stream.
    let kill = std::process::Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(kill.success());

    let body = request.join().expect("request thread");
    assert!(
        body.contains("\"event\": \"done\""),
        "in-flight stream must finish under SIGTERM: {body}"
    );

    let deadline = Instant::now() + Duration::from_secs(60);
    let status = loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => break status,
            None if Instant::now() > deadline => {
                let _ = child.kill();
                panic!("spnn serve did not exit within 60s of SIGTERM");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    };
    assert!(status.success(), "graceful drain must exit 0, got {status}");
}
