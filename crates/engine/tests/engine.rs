//! Integration tests for the `spnn-engine` subsystem: thread-count
//! determinism, batched-forward parity with the per-sample Monte-Carlo
//! reference, adaptive early-termination correctness, and trained-context
//! cache reuse (bit-identical warm runs, train-once across scenarios,
//! corruption fallback).

use spnn_core::{mc_accuracy, HardwareEffects, MeshTopology, PerturbationPlan, PhotonicNetwork};
use spnn_engine::cache::{entry_path, ContextCache, Fingerprint};
use spnn_engine::prelude::*;
use spnn_engine::runner::{run_scenario_with, run_scenarios};
use spnn_engine::spec::PlanKind;
use spnn_engine::StopRule;
use spnn_linalg::C64;
use spnn_neural::ComplexNetwork;
use spnn_photonics::{PerturbTarget, UncertaintySpec};
use std::path::PathBuf;

fn tiny_network() -> (PhotonicNetwork, Vec<Vec<C64>>, Vec<usize>) {
    let sw = ComplexNetwork::new(&[5, 5, 4], 17);
    let hw = PhotonicNetwork::from_network(&sw, MeshTopology::Clements, None).unwrap();
    let features: Vec<Vec<C64>> = (0..20)
        .map(|i| {
            (0..5)
                .map(|j| {
                    C64::new(
                        ((i * 3 + j * 7) % 6) as f64 * 0.22 - 0.4,
                        ((i * 5 + j) % 4) as f64 * 0.17,
                    )
                })
                .collect()
        })
        .collect();
    let ideal = hw.ideal_matrices();
    let labels: Vec<usize> = features
        .iter()
        .map(|f| hw.classify_with(&ideal, f))
        .collect();
    (hw, features, labels)
}

fn tiny_spec() -> ScenarioSpec {
    let mut spec = presets::fig4(&RunScale::tiny());
    spec.sweep.modes = vec![PerturbTarget::Both];
    spec.sweep.sigmas = vec![0.0, 0.05, 0.1];
    spec.iterations = 6;
    spec.min_iterations = 2;
    spec
}

/// The tentpole determinism guarantee: the full per-point sample streams —
/// not just the aggregates — are bit-identical for 1, 2 and 8 worker
/// threads, including with adaptive early termination enabled.
#[test]
fn point_results_are_bit_identical_across_1_2_8_threads() {
    let (hw, xs, ys) = tiny_network();
    let batch = TestBatch::new(&xs, &ys);
    let plan = PerturbationPlan::global(UncertaintySpec::both(0.05));
    let fx = HardwareEffects::default();
    for stop in [StopRule::fixed(24), StopRule::adaptive(48, 8, 0.05)] {
        let reference = run_point(
            &hw,
            &plan,
            &fx,
            &batch,
            &stop,
            8,
            42,
            Some(1),
            KernelProfile::Reference,
        );
        for threads in [2usize, 8] {
            let other = run_point(
                &hw,
                &plan,
                &fx,
                &batch,
                &stop,
                8,
                42,
                Some(threads),
                KernelProfile::Reference,
            );
            assert_eq!(
                reference.samples, other.samples,
                "sample stream diverged at {threads} threads ({stop:?})"
            );
            assert_eq!(reference.mean.to_bits(), other.mean.to_bits());
            assert_eq!(reference.std_dev.to_bits(), other.std_dev.to_bits());
            assert_eq!(reference.stopped_early, other.stopped_early);
        }
    }
}

/// Whole-scenario determinism: identical reports for different thread
/// counts and across repeated runs.
#[test]
fn scenario_reports_are_identical_across_thread_counts() {
    let spec = tiny_spec();
    let mut reports = Vec::new();
    for threads in [1usize, 2, 8] {
        let cfg = EngineConfig {
            threads: Some(threads),
            verbose: false,
            ..EngineConfig::default()
        };
        reports.push(run_scenario(&spec, &cfg).expect("scenario runs"));
    }
    assert_eq!(reports[0], reports[1], "1 vs 2 threads");
    assert_eq!(reports[0], reports[2], "1 vs 8 threads");
    // And a repeat run is a pure function of the spec.
    let again = run_scenario(
        &spec,
        &EngineConfig {
            threads: Some(2),
            verbose: false,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    assert_eq!(reports[0], again);
}

/// Batched-forward parity: with a fixed-count rule and the same seed, the
/// engine's per-iteration accuracies equal the seed's per-sample
/// `mc_accuracy` bit for bit.
#[test]
fn batched_engine_matches_per_sample_mc_accuracy_bitwise() {
    let (hw, xs, ys) = tiny_network();
    let batch = TestBatch::new(&xs, &ys);
    let fx = HardwareEffects::default();
    let plans = [
        PerturbationPlan::None,
        PerturbationPlan::global(UncertaintySpec::both(0.05)),
        PerturbationPlan::global_no_sigma(UncertaintySpec::phase_shifters_only(0.1)),
        PerturbationPlan::global(UncertaintySpec::beam_splitters_only(0.08)),
    ];
    for (p, plan) in plans.iter().enumerate() {
        let seed = 1000 + p as u64;
        let reference = mc_accuracy(&hw, plan, &fx, &xs, &ys, 12, seed);
        let engine = run_point(
            &hw,
            plan,
            &fx,
            &batch,
            &StopRule::fixed(12),
            5,
            seed,
            None,
            KernelProfile::Reference,
        );
        let ref_bits: Vec<u64> = reference.samples.iter().map(|s| s.to_bits()).collect();
        let eng_bits: Vec<u64> = engine.samples.iter().map(|s| s.to_bits()).collect();
        assert_eq!(ref_bits, eng_bits, "plan {p} diverged");
        assert_eq!(engine.mean.to_bits(), reference.mean.to_bits());
    }
}

/// Parity also holds with deterministic hardware effects switched on
/// (quantization + insertion loss exercise the full `realize` path).
#[test]
fn parity_holds_with_hardware_effects() {
    let (hw, xs, ys) = tiny_network();
    let batch = TestBatch::new(&xs, &ys);
    let fx = HardwareEffects {
        quantization_bits: Some(5),
        mzi_loss_db: 0.05,
        ..HardwareEffects::default()
    };
    let plan = PerturbationPlan::global(UncertaintySpec::both(0.03));
    let reference = mc_accuracy(&hw, &plan, &fx, &xs, &ys, 8, 77);
    let engine = run_point(
        &hw,
        &plan,
        &fx,
        &batch,
        &StopRule::fixed(8),
        3,
        77,
        Some(3),
        KernelProfile::Reference,
    );
    assert_eq!(engine.samples, reference.samples);
}

/// Early termination may only fire once the measured 95 % margin of error
/// is at or below the target, never before `min_iterations`, and a
/// `target_moe` of zero must always run the full budget.
#[test]
fn early_termination_respects_the_margin_of_error_target() {
    let (hw, xs, ys) = tiny_network();
    let batch = TestBatch::new(&xs, &ys);
    let fx = HardwareEffects::default();

    // Sweep several targets; verify the stop invariant for each.
    for (sigma, target) in [(0.05, 0.08), (0.05, 0.03), (0.1, 0.06)] {
        let plan = PerturbationPlan::global(UncertaintySpec::both(sigma));
        let stop = StopRule::adaptive(80, 8, target);
        let r = run_point(
            &hw,
            &plan,
            &fx,
            &batch,
            &stop,
            8,
            9,
            None,
            KernelProfile::Reference,
        );
        assert!(r.samples.len() >= 8, "stopped before min_iterations");
        if r.stopped_early {
            assert!(r.samples.len() < 80);
            assert!(
                r.moe95 <= target,
                "σ={sigma}: stopped early at moe {} > target {target}",
                r.moe95
            );
        } else {
            assert_eq!(r.samples.len(), 80);
        }
        // Invariant regardless of early stop: at every round boundary
        // before the stop, the rule must NOT have been satisfied. Replay
        // the stream to verify the engine stopped at the first legal
        // opportunity (no over- or under-shooting).
        let mut est = Welford::new();
        let mut expected_stop_at = None;
        let full = run_point(
            &hw,
            &plan,
            &fx,
            &batch,
            &StopRule::fixed(80),
            8,
            9,
            None,
            KernelProfile::Reference,
        );
        for (k, &s) in full.samples.iter().enumerate() {
            est.push(s);
            let boundary = (k + 1) % 8 == 0 || k + 1 == 80;
            if boundary && stop.should_stop(&est) {
                expected_stop_at = Some(k + 1);
                break;
            }
        }
        let expected = expected_stop_at.unwrap_or(80);
        assert_eq!(
            r.samples.len(),
            expected,
            "σ={sigma}, target {target}: engine did not stop at the first legal boundary"
        );
    }
}

/// `target_moe = 0` disables adaptivity at the scenario level.
#[test]
fn zero_target_runs_the_full_budget() {
    let spec = tiny_spec();
    assert_eq!(spec.target_moe, 0.0);
    let report = run_scenario(
        &spec,
        &EngineConfig {
            threads: Some(2),
            verbose: false,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    for row in &report.rows {
        assert_eq!(row.iterations, spec.iterations);
        assert!(!row.stopped_early);
    }
}

/// An adaptive scenario never exceeds the cap and spends fewer iterations
/// on easy (zero-variance) points.
#[test]
fn adaptive_scenario_saves_iterations_on_easy_points() {
    let mut spec = tiny_spec();
    spec.iterations = 40;
    spec.min_iterations = 4;
    spec.round_size = 4;
    spec.target_moe = 0.05;
    let report = run_scenario(
        &spec,
        &EngineConfig {
            threads: Some(2),
            verbose: false,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    for row in &report.rows {
        assert!(row.iterations <= 40);
        if row.stopped_early {
            assert!(row.moe95 <= 0.05, "row {:?}", row.labels);
        }
    }
    // σ = 0 has zero variance → must stop at the first legal boundary.
    let zero_row = report
        .rows
        .iter()
        .find(|r| r.label("sigma") == Some("0"))
        .expect("σ=0 row present");
    assert_eq!(zero_row.iterations, 4);
    assert!(zero_row.stopped_early);
}

/// The engine reproduces the seed's `exp1` sweep semantics: a Fig. 4 spec
/// compiled and run through the engine produces one row per (mode, σ) and
/// a monotone-degrading accuracy curve on this easy instance.
#[test]
fn fig4_scenario_shape() {
    let mut spec = presets::fig4(&RunScale::tiny());
    spec.sweep.sigmas = vec![0.0, 0.15];
    spec.iterations = 6;
    spec.min_iterations = 2;
    let report = run_scenario(
        &spec,
        &EngineConfig {
            threads: None,
            verbose: false,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    assert_eq!(report.rows.len(), 3 * 2, "3 modes × 2 sigmas");
    assert_eq!(report.topologies.len(), 1);
    let nominal = report.topologies[0].nominal_accuracy;
    for mode in ["phs_only", "bes_only", "both"] {
        let at = |sig: &str| {
            report
                .rows
                .iter()
                .find(|r| r.label("mode") == Some(mode) && r.label("sigma") == Some(sig))
                .unwrap()
                .mean
        };
        // The mean of n identical samples differs from the sample only by
        // summation rounding.
        assert!(
            (at("0") - nominal).abs() < 1e-12,
            "σ=0 equals nominal for {mode}"
        );
        assert!(
            at("0.15") <= at("0"),
            "σ=0.15 should not beat σ=0 for {mode}"
        );
    }
}

/// Zonal scenarios cover every zone and report distinct labels.
#[test]
fn fig5_zonal_scenario_runs_end_to_end() {
    let mut spec = presets::fig5(&RunScale::tiny());
    spec.plan = PlanKind::Zonal;
    spec.iterations = 3;
    spec.min_iterations = 2;
    // Keep it small: a 4-4-3-like tiny architecture is not possible for
    // the 10-class dataset, so restrict to one layer and stage instead.
    spec.zonal.layers = spnn_engine::spec::LayerSelect::List(vec![0]);
    spec.zonal.stages = vec![spnn_core::Stage::UMesh];
    let report = run_scenario(
        &spec,
        &EngineConfig {
            threads: Some(2),
            verbose: false,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    assert!(!report.rows.is_empty());
    let mut label_sets: Vec<String> = report
        .rows
        .iter()
        .map(|r| {
            format!(
                "{}-{}-{}",
                r.label("stage").unwrap(),
                r.label("zone_row").unwrap(),
                r.label("zone_col").unwrap()
            )
        })
        .collect();
    let n = label_sets.len();
    label_sets.sort();
    label_sets.dedup();
    assert_eq!(label_sets.len(), n, "every zone appears exactly once");
}

// ---------------------------------------------------------------------------
// Trained-context cache
// ---------------------------------------------------------------------------

fn cache_tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spnn-engine-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Reports must be equal *bitwise*, not just `PartialEq`-equal (which
/// would already fail on any difference, but says nothing about NaN and
/// signed zeros).
fn assert_reports_bit_identical(a: &EngineReport, b: &EngineReport) {
    assert_eq!(a, b, "reports differ structurally");
    for (ta, tb) in a.topologies.iter().zip(&b.topologies) {
        assert_eq!(
            ta.software_accuracy.to_bits(),
            tb.software_accuracy.to_bits()
        );
        assert_eq!(ta.nominal_accuracy.to_bits(), tb.nominal_accuracy.to_bits());
    }
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.mean.to_bits(), rb.mean.to_bits(), "{:?}", ra.labels);
        assert_eq!(ra.std_dev.to_bits(), rb.std_dev.to_bits());
        assert_eq!(ra.moe95.to_bits(), rb.moe95.to_bits());
    }
}

/// The acceptance guarantee: a warm-cache re-run of a scenario skips
/// training entirely and produces a bit-identical report.
#[test]
fn warm_cache_rerun_is_bit_identical_and_skips_training() {
    let dir = cache_tmp_dir("warm-rerun");
    let spec = tiny_spec();
    let config = EngineConfig::default();

    let cold_cache = ContextCache::on_disk(&dir);
    let cold = run_scenario_with(&spec, &config, &cold_cache).expect("cold run");
    assert_eq!(cold_cache.stats().trains, 1);

    // A fresh cache over the same directory models a new process.
    let warm_cache = ContextCache::on_disk(&dir);
    let warm = run_scenario_with(&spec, &config, &warm_cache).expect("warm run");
    let s = warm_cache.stats();
    assert_eq!(s.trains, 0, "warm run must not train");
    assert_eq!(s.disk_hits, 1, "warm run must load from disk");
    assert_reports_bit_identical(&cold, &warm);

    // And both equal the uncached reference — caching is invisible in the
    // results.
    let uncached = run_scenario(&spec, &config).expect("uncached run");
    assert_reports_bit_identical(&cold, &uncached);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two scenarios sharing (dataset, architecture, seed) — e.g. fig4's
/// global sweep and fig5's zonal sweep — train exactly once.
#[test]
fn scenarios_sharing_a_fingerprint_train_once() {
    let scale = RunScale::tiny();
    let mut fig4 = presets::fig4(&scale);
    fig4.sweep.modes = vec![PerturbTarget::Both];
    fig4.sweep.sigmas = vec![0.0, 0.1];
    fig4.iterations = 3;
    fig4.min_iterations = 2;
    let mut fig5 = presets::fig5(&scale);
    fig5.iterations = 3;
    fig5.min_iterations = 2;
    fig5.zonal.layers = spnn_engine::spec::LayerSelect::List(vec![0]);
    fig5.zonal.stages = vec![spnn_core::Stage::UMesh];
    assert_eq!(
        Fingerprint::of_spec(&fig4),
        Fingerprint::of_spec(&fig5),
        "fig4/fig5 share dataset, architecture and seed"
    );

    let config = EngineConfig::default();
    let cache = ContextCache::in_memory();
    let a = run_scenario_with(&fig4, &config, &cache).expect("fig4");
    let b = run_scenario_with(&fig5, &config, &cache).expect("fig5");
    let s = cache.stats();
    assert_eq!(s.trains, 1, "second scenario must reuse the context");
    assert_eq!(s.mem_hits, 1);

    // Reuse must not change results relative to isolated runs.
    assert_reports_bit_identical(&a, &run_scenario(&fig4, &config).unwrap());
    assert_reports_bit_identical(&b, &run_scenario(&fig5, &config).unwrap());
}

/// `run_scenarios` wires the shared cache in itself and preserves input
/// order.
#[test]
fn run_scenarios_matches_individual_runs() {
    let mut a = tiny_spec();
    a.name = "a".into();
    let mut b = tiny_spec();
    b.name = "b".into();
    b.sweep.sigmas = vec![0.0, 0.08];
    let config = EngineConfig::default();
    let batch = run_scenarios(&[a.clone(), b.clone()], &config).expect("batch run");
    assert_eq!(batch.len(), 2);
    assert_eq!(batch[0].scenario, "a");
    assert_eq!(batch[1].scenario, "b");
    assert_reports_bit_identical(&batch[0], &run_scenario(&a, &config).unwrap());
    assert_reports_bit_identical(&batch[1], &run_scenario(&b, &config).unwrap());
}

/// A corrupted cache file must fall back to retraining and still produce
/// the bit-identical report.
#[test]
fn corrupted_cache_entry_falls_back_to_identical_results() {
    let dir = cache_tmp_dir("corrupt-report");
    let spec = tiny_spec();
    let config = EngineConfig::default();

    let cold_cache = ContextCache::on_disk(&dir);
    let cold = run_scenario_with(&spec, &config, &cold_cache).expect("cold run");
    let path = entry_path(&dir, &Fingerprint::of_spec(&spec));
    let mut bytes = std::fs::read(&path).expect("entry written");
    let mid = bytes.len() / 3;
    bytes[mid] ^= 0x5A;
    std::fs::write(&path, &bytes).unwrap();

    let warm_cache = ContextCache::on_disk(&dir);
    let warm = run_scenario_with(&spec, &config, &warm_cache).expect("fallback run");
    let s = warm_cache.stats();
    assert_eq!(s.disk_hits, 0, "corrupt entry must not load");
    assert_eq!(s.trains, 1, "fallback must retrain");
    assert_reports_bit_identical(&cold, &warm);

    // The retrain overwrote the corrupt entry with a good one.
    let healed = ContextCache::on_disk(&dir);
    let again = run_scenario_with(&spec, &config, &healed).expect("healed run");
    assert_eq!(healed.stats().disk_hits, 1, "entry was healed");
    assert_reports_bit_identical(&cold, &again);
    let _ = std::fs::remove_dir_all(&dir);
}
