//! Executor-layer integration tests: the acceptance guarantee is that
//! `LocalExecutor`, `SpawnExecutor`, and `RemoteExecutor` all drive the
//! same `run_distributed` merge path and produce reports **byte-for-byte
//! identical** to the unsharded `spnn run` — including when a remote
//! worker is dead or fails mid-response and its shard is retried on
//! another worker — and that rows stream in strict prefix order while
//! shards complete out of order.

mod common;

use common::{dead_addr, flaky_addr, start_server, Fault, FaultWorker};
use spnn_engine::exec::{
    run_distributed, CancelToken, ExecContext, ExecError, Executor, LocalExecutor, RemoteExecutor,
    SpawnExecutor, WeightSource,
};
use spnn_engine::prelude::*;
use spnn_engine::runner::StreamEvent;
use spnn_engine::serve::{ServeConfig, Server};
use spnn_photonics::PerturbTarget;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

/// A slightly wider fig4 than the shared tiny one: 6 points so every
/// executor shape (more shards than workers, local+remote mixes) has
/// work to spread.
fn tiny_fig4() -> ScenarioSpec {
    let mut spec = common::tiny_fig4();
    spec.sweep.modes = vec![PerturbTarget::Both, PerturbTarget::PhaseShiftersOnly];
    spec.iterations = 10;
    spec
}

/// Runs `spec` through `executor` with a fresh context, asserting rows
/// stream in prefix order, and returns the merged report.
fn distribute(spec: &ScenarioSpec, executor: &dyn Executor, shards: usize) -> EngineReport {
    let config = EngineConfig {
        threads: Some(2),
        verbose: false,
        cache_dir: None,
        ..EngineConfig::default()
    };
    let cache = ContextCache::in_memory();
    let cancel = CancelToken::new();
    let ctx = ExecContext {
        config: &config,
        cache: &cache,
        cancel: &cancel,
    };
    let mut row_indices = Vec::new();
    let report = run_distributed(spec, executor, shards, &ctx, &mut |event| {
        if let StreamEvent::Row { index, .. } = event {
            row_indices.push(index);
        }
    })
    .unwrap_or_else(|e| panic!("{} executor failed: {e}", executor.name()));
    let expected: Vec<usize> = (0..report.rows.len()).collect();
    assert_eq!(
        row_indices,
        expected,
        "{}: rows must stream in prefix order",
        executor.name()
    );
    report
}

fn assert_matches_unsharded(spec: &ScenarioSpec, report: &EngineReport, what: &str) {
    let unsharded = run_scenario(spec, &EngineConfig::default()).expect("unsharded run");
    assert_eq!(
        to_json(report),
        to_json(&unsharded),
        "{what}: JSON diverged"
    );
    assert_eq!(to_csv(report), to_csv(&unsharded), "{what}: CSV diverged");
}

/// Acceptance criterion: the in-process threaded executor is
/// byte-identical to the unsharded run for several shard counts.
#[test]
fn local_executor_is_byte_identical() {
    let spec = tiny_fig4();
    for shards in [1, 3, 5] {
        let report = distribute(&spec, &LocalExecutor, shards);
        assert_matches_unsharded(&spec, &report, &format!("local k={shards}"));
    }
}

/// Acceptance criterion: the child-process executor (the library home of
/// `spnn run --shards k --spawn`) is byte-identical to the unsharded run.
#[test]
fn spawn_executor_is_byte_identical() {
    let spec = tiny_fig4();
    let executor = SpawnExecutor {
        exe: PathBuf::from(env!("CARGO_BIN_EXE_spnn")),
    };
    let report = distribute(&spec, &executor, 3);
    assert_matches_unsharded(&spec, &report, "spawn k=3");
}

/// Binds a worker service on an ephemeral port (in-memory cache) and
/// leaves it running for the rest of the test process.
fn start_worker() -> SocketAddr {
    start_server(2)
}

/// Acceptance criterion: a remote fan-out across healthy workers is
/// byte-identical to the unsharded run.
#[test]
fn remote_executor_is_byte_identical() {
    let spec = tiny_fig4();
    let workers = vec![
        format!("http://{}", start_worker()),
        format!("http://{}", start_worker()),
        format!("http://{}", start_worker()),
    ];
    let report = distribute(&spec, &RemoteExecutor::new(workers), 3);
    assert_matches_unsharded(&spec, &report, "remote k=3");
}

/// Satellite acceptance: shards whose first worker is dead (connection
/// refused) or fails mid-response are retried on another worker, and the
/// merged report is still byte-identical — a failure is invisible in the
/// output.
#[test]
fn worker_failure_is_retried_on_another_worker() {
    let spec = tiny_fig4();
    let workers = vec![
        format!("http://{}", dead_addr()),
        format!("http://{}", flaky_addr()),
        format!("http://{}", start_worker()),
        format!("http://{}", start_worker()),
    ];
    let report = distribute(&spec, &RemoteExecutor::new(workers), 4);
    assert_matches_unsharded(&spec, &report, "remote with dead+flaky workers");
}

/// With every worker unreachable the run fails with a Remote error that
/// names the per-worker reasons — it must not hang or fabricate rows.
#[test]
fn all_workers_dead_is_an_error() {
    let spec = tiny_fig4();
    let executor = RemoteExecutor::new(vec![
        format!("http://{}", dead_addr()),
        format!("http://{}", dead_addr()),
    ]);
    let config = EngineConfig::default();
    let cache = ContextCache::in_memory();
    let cancel = CancelToken::new();
    let ctx = ExecContext {
        config: &config,
        cache: &cache,
        cancel: &cancel,
    };
    let err =
        run_distributed(&spec, &executor, 2, &ctx, &mut |_| {}).expect_err("dead fleet must fail");
    assert!(err.to_string().contains("every worker failed"), "{err}");
}

/// A cancelled token makes the remote executor give up quickly with
/// `Cancelled` instead of dispatching work.
#[test]
fn cancelled_remote_run_reports_cancellation() {
    let spec = tiny_fig4();
    let executor = RemoteExecutor::new(vec![format!("http://{}", dead_addr())]);
    let config = EngineConfig::default();
    let cache = ContextCache::in_memory();
    let cancel = CancelToken::new();
    cancel.cancel();
    let ctx = ExecContext {
        config: &config,
        cache: &cache,
        cancel: &cancel,
    };
    let err = run_distributed(&spec, &executor, 1, &ctx, &mut |_| {})
        .expect_err("cancelled run must fail");
    assert!(
        matches!(
            err,
            spnn_engine::exec::DistError::Exec(ExecError::Cancelled)
        ),
        "{err}"
    );
}

/// Graceful shutdown, library form: cancelling the server's token makes
/// `Server::run` stop accepting and return `Ok` after draining.
#[test]
fn server_run_returns_after_cancel() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr().expect("addr");
    let token = server.cancel_token();
    let handle = std::thread::spawn(move || server.run());
    // The server is live…
    std::net::TcpStream::connect(addr).expect("server accepts while running");
    // …until cancelled.
    token.cancel();
    let start = std::time::Instant::now();
    while !handle.is_finished() {
        assert!(
            start.elapsed() < std::time::Duration::from_secs(10),
            "run() must return promptly after cancel"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    handle.join().expect("join").expect("clean shutdown");
}

// ---------------------------------------------------------------------------
// Fleets: mixed local+remote dispatch, capacity weights, chaos smoke
// ---------------------------------------------------------------------------

/// Tentpole acceptance (mixed dispatch): one `run_distributed` call
/// driving in-process peers *and* remote workers as peers in a single
/// plan produces a report byte-identical to the unsharded run.
#[test]
fn fleet_of_local_and_remote_peers_is_byte_identical() {
    let spec = tiny_fig4();
    let executor =
        RemoteExecutor::new(vec![format!("http://{}", start_worker())]).with_local_peers(2);
    assert_eq!(executor.name(), "fleet");
    let report = distribute(&spec, &executor, 3);
    assert_matches_unsharded(&spec, &report, "fleet: 1 remote + 2 local");
}

/// Tentpole acceptance (weighted planning): arbitrary static capacity
/// skews — including a zero-weight peer that gets an empty slice — never
/// change a byte of the assembled report, only who computes what.
#[test]
fn weighted_fleet_is_byte_identical_for_any_static_skew() {
    let spec = tiny_fig4();
    let workers = vec![
        format!("http://{}", start_worker()),
        format!("http://{}", start_worker()),
    ];
    for weights in [vec![1, 1, 1], vec![7, 1, 2], vec![0, 3, 1]] {
        let executor = RemoteExecutor::new(workers.clone())
            .with_local_peers(1)
            .with_weights(WeightSource::Static(weights.clone()));
        let report = distribute(&spec, &executor, 3);
        assert_matches_unsharded(&spec, &report, &format!("fleet weights {weights:?}"));
    }
}

/// `--weights-from healthz` probes each worker's core count and weights
/// the plan accordingly — still byte-identical, because weights only
/// move slice boundaries.
#[test]
fn healthz_weighted_fleet_is_byte_identical() {
    let spec = tiny_fig4();
    let workers = vec![
        format!("http://{}", start_worker()),
        format!("http://{}", start_worker()),
    ];
    let executor = RemoteExecutor::new(workers).with_weights(WeightSource::Healthz);
    let report = distribute(&spec, &executor, 2);
    assert_matches_unsharded(&spec, &report, "fleet weighted from /healthz");
}

/// Chaos smoke ([`FaultWorker`] drop mode): a worker whose connections
/// are reset mid-dispatch is retried on a healthy peer; the failure is
/// invisible in the output.
#[test]
fn dropped_connections_are_retried_and_stay_byte_identical() {
    let spec = tiny_fig4();
    let chaos = FaultWorker::start(start_worker(), Fault::DropConnections(2));
    let workers = vec![chaos.url(), format!("http://{}", start_worker())];
    let report = distribute(&spec, &RemoteExecutor::new(workers), 2);
    assert_matches_unsharded(&spec, &report, "remote with connection-dropping worker");
}

/// Chaos smoke ([`FaultWorker`] stall mode): a worker that wedges
/// mid-response and recovers delivers a late but intact partial — the
/// client has no idle timeout on /shard, so the bytes are unchanged.
#[test]
fn mid_response_stall_recovers_and_stays_byte_identical() {
    let spec = tiny_fig4();
    let chaos = FaultWorker::start(
        start_worker(),
        Fault::MidStall {
            after: 100,
            stall: Duration::from_millis(800),
        },
    );
    let workers = vec![chaos.url(), format!("http://{}", start_worker())];
    let report = distribute(&spec, &RemoteExecutor::new(workers), 2);
    assert_matches_unsharded(&spec, &report, "remote with mid-response stall");
}
