//! Work-stealing chaos tests: the acceptance guarantee is that a fleet
//! with stealing enabled produces reports **byte-for-byte identical** to
//! the unsharded run while a straggler is stolen from, killed mid-steal,
//! or answers only after its slice was already re-dispatched — and that
//! the steal is observable (`spnn_steal_total`,
//! `spnn_shard_rounds_redispatched_total`) and actually beats the
//! no-steal wall clock. Overlap safety rests on determinism under
//! redundancy: iteration `k` of a point is a pure function of
//! `(seed, k)`, so speculative duplicates carry identical bits and
//! `MergeState` can drop them.

mod common;

use common::{post_shard, scrape, start_server, start_server_cfg, tiny_fig4, Fault, FaultWorker};
use spnn_engine::exec::{run_distributed, CancelToken, ExecContext, Executor, RemoteExecutor};
use spnn_engine::metrics::{MetricsRegistry, Reading};
use spnn_engine::prelude::*;
use spnn_engine::shard::merge_partials;
use std::time::{Duration, Instant};

/// Sums a counter family across label sets in a fresh-per-run registry.
fn counter_total(registry: &MetricsRegistry, name: &str) -> u64 {
    registry
        .snapshot()
        .iter()
        .filter(|s| s.name == name)
        .map(|s| match s.value {
            Reading::Counter(v) => v,
            _ => 0,
        })
        .sum()
}

/// Runs `spec` through `executor` with a fresh context and registry;
/// returns the merged report, the registry, and the wall clock.
fn fleet_run(
    spec: &ScenarioSpec,
    executor: &dyn Executor,
    peers: usize,
) -> (EngineReport, MetricsRegistry, Duration) {
    let registry = MetricsRegistry::new();
    let config = EngineConfig {
        threads: Some(2),
        verbose: false,
        cache_dir: None,
        metrics: registry.clone(),
        ..EngineConfig::default()
    };
    let cache = ContextCache::in_memory();
    let cancel = CancelToken::new();
    let ctx = ExecContext {
        config: &config,
        cache: &cache,
        cancel: &cancel,
    };
    let start = Instant::now();
    let report = run_distributed(spec, executor, peers, &ctx, &mut |_| {})
        .unwrap_or_else(|e| panic!("{} run failed: {e}", executor.name()));
    (report, registry, start.elapsed())
}

fn assert_matches_unsharded(spec: &ScenarioSpec, report: &EngineReport, what: &str) {
    let unsharded = run_scenario(spec, &EngineConfig::default()).expect("unsharded run");
    assert_eq!(
        to_json(report),
        to_json(&unsharded),
        "{what}: JSON diverged"
    );
    assert_eq!(to_csv(report), to_csv(&unsharded), "{what}: CSV diverged");
}

/// Tentpole acceptance: with one worker slowed far past its peers, a
/// stealing fleet re-dispatches the straggler's slice, stays
/// byte-identical to the unsharded run, counts the steal, and beats the
/// no-steal wall clock (which must wait the full injected latency).
#[test]
fn stolen_straggler_is_byte_identical_and_beats_no_steal() {
    let spec = tiny_fig4();
    let delay = Duration::from_secs(4);
    let straggler = FaultWorker::start(start_server(2), Fault::Latency(delay));
    let workers = vec![
        straggler.url(),
        format!("http://{}", start_server(2)),
        format!("http://{}", start_server(2)),
    ];

    // No-steal first: its wall clock is bounded below by the injected
    // latency, because the straggler's slice has exactly one home.
    let no_steal = RemoteExecutor::new(workers.clone());
    let (report, registry, without) = fleet_run(&spec, &no_steal, 3);
    assert_matches_unsharded(&spec, &report, "no-steal fleet with straggler");
    assert_eq!(counter_total(&registry, "spnn_steal_total"), 0);
    assert!(
        without >= delay,
        "without stealing the straggler must gate the run ({without:?})"
    );

    let stealing = RemoteExecutor::new(workers).with_steal(true);
    let (report, registry, with) = fleet_run(&spec, &stealing, 3);
    assert_matches_unsharded(&spec, &report, "stealing fleet with straggler");
    assert!(
        counter_total(&registry, "spnn_steal_total") >= 1,
        "a drained peer must have claimed the straggler's slice"
    );
    assert!(
        counter_total(&registry, "spnn_shard_rounds_redispatched_total") >= 1,
        "re-dispatched rounds must be counted"
    );
    assert!(
        with < without,
        "stealing must beat the no-steal wall clock ({with:?} vs {without:?})"
    );
}

/// A straggler that never answers at all — killed mid-steal, socket left
/// open — must not wedge the run: the stolen re-dispatch completes the
/// round space, the coordinator cancels the orphaned dispatch, and the
/// report is byte-identical.
#[test]
fn straggler_killed_mid_steal_still_completes_byte_identical() {
    let spec = tiny_fig4();
    // Far beyond the test's lifetime: the victim's answer never comes.
    let corpse = FaultWorker::start(start_server(2), Fault::Latency(Duration::from_secs(300)));
    let workers = vec![
        corpse.url(),
        format!("http://{}", start_server(2)),
        format!("http://{}", start_server(2)),
    ];
    let executor = RemoteExecutor::new(workers).with_steal(true);
    let start = Instant::now();
    let (report, registry, _) = fleet_run(&spec, &executor, 3);
    assert_matches_unsharded(&spec, &report, "stealing fleet with dead-socket straggler");
    assert!(counter_total(&registry, "spnn_steal_total") >= 1);
    assert!(
        start.elapsed() < Duration::from_secs(120),
        "the run must not wait for the corpse's socket"
    );
}

/// The merge-level half of overlap safety, deterministic and
/// order-independent: a victim that answers *after* its slice was
/// re-dispatched delivers a partial whose rounds are already covered.
/// `MergeState` must absorb full/subset/duplicate overlaps in any
/// arrival order without changing a byte.
#[test]
fn late_and_duplicate_span_partials_merge_byte_identical() {
    let spec = tiny_fig4();
    let text = spec.to_text();
    let worker_a = start_server(2);
    let worker_b = start_server(2);

    // tiny_fig4: 3 points x ceil(8/4) = 6 round-space units.
    let full = |addr| {
        let (status, body) = post_shard(addr, "span=0-6", &text);
        assert_eq!(status, 200, "{body}");
        PartialReport::parse(&body).expect("parse span partial")
    };
    let victim = full(worker_a); // the late answer: the whole slice
    let stolen_lo = {
        let (status, body) = post_shard(worker_b, "span=0-3", &text);
        assert_eq!(status, 200, "{body}");
        PartialReport::parse(&body).expect("parse span partial")
    };
    let stolen_hi = {
        let (status, body) = post_shard(worker_b, "span=3-6", &text);
        assert_eq!(status, 200, "{body}");
        PartialReport::parse(&body).expect("parse span partial")
    };
    let duplicate = full(worker_b); // the same bytes from a different box

    let reference = run_scenario(&spec, &EngineConfig::default()).expect("unsharded run");
    // Every arrival order, including duplicates-first, merges to the
    // same bytes as the unsharded run.
    let orders: Vec<Vec<&PartialReport>> = vec![
        vec![&stolen_lo, &stolen_hi, &victim],
        vec![&victim, &stolen_lo, &stolen_hi],
        vec![&duplicate, &victim, &stolen_lo, &stolen_hi],
        vec![&stolen_hi, &duplicate, &stolen_lo],
    ];
    for (i, order) in orders.iter().enumerate() {
        let parts: Vec<PartialReport> = order.iter().map(|p| (*p).clone()).collect();
        let merged = merge_partials(&parts)
            .unwrap_or_else(|e| panic!("order {i}: overlapping merge rejected: {e}"));
        assert_eq!(
            to_json(&merged),
            to_json(&reference),
            "order {i}: JSON diverged"
        );
        assert_eq!(
            to_csv(&merged),
            to_csv(&reference),
            "order {i}: CSV diverged"
        );
    }
}

/// The serve-layer wiring end to end: a coordinator configured with
/// stealing, a local peer, and healthz-seeded weights streams a report
/// byte-identical to the batch run while one worker drags, and exposes
/// the steal counters and per-worker capacity gauges on `/metrics`.
#[test]
fn coordinator_with_steal_flag_streams_byte_identical_and_counts_steals() {
    let spec = tiny_fig4();
    let straggler = FaultWorker::start(start_server(2), Fault::Latency(Duration::from_secs(3)));
    let coordinator = start_server_cfg(ServeConfig {
        workers: 2,
        remote_workers: vec![straggler.url(), format!("http://{}", start_server(2))],
        steal: true,
        local_peers: 1,
        weights_from: spnn_engine::WeightSource::Healthz,
        ..ServeConfig::default()
    });
    let (status, stream) = common::post_run(coordinator, &spec.to_text());
    assert_eq!(status, 200, "{stream}");
    let assembled = spnn_engine::assemble_report(&stream).expect("assemble");
    let reference = run_scenario(&spec, &EngineConfig::default()).expect("batch run");
    assert_eq!(to_json(&assembled), to_json(&reference));
    assert_eq!(to_csv(&assembled), to_csv(&reference));

    let exp = scrape(coordinator);
    assert!(
        exp.total("spnn_steal_total") >= 1.0,
        "the slowed worker's slice must have been stolen"
    );
    assert!(
        exp.total("spnn_shard_rounds_redispatched_total") >= 1.0,
        "re-dispatched rounds must be visible on /metrics"
    );
    let capacity_series = exp
        .samples
        .iter()
        .filter(|s| s.name == "spnn_worker_capacity_weight")
        .count();
    assert!(
        capacity_series >= 3,
        "healthz weighting must export one capacity gauge per peer \
         (remote and local), saw {capacity_series}"
    );
}
