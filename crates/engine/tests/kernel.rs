//! Kernel-profile integration tests: the `fma` profile is a *different
//! deterministic contract*, not a loosening of the reference one. Every
//! guarantee the engine makes for the reference profile must hold
//! verbatim under `--kernel fma` — bit-stability across thread counts,
//! byte-identical reports from every executor, profile-scoped
//! fingerprints — plus two of its own: pinned goldens for the preset
//! scenarios, and statistical agreement with the reference profile
//! within the Monte-Carlo margin of error.
//!
//! To re-pin the goldens after an *intentional* kernel change, run
//! `cargo test -p spnn-engine --test kernel -- --nocapture` and copy the
//! printed hashes (see `docs/kernels.md`).

mod common;

use common::start_server;
use spnn_engine::exec::{
    run_distributed, CancelToken, ExecContext, Executor, LocalExecutor, RemoteExecutor,
    SpawnExecutor,
};
use spnn_engine::prelude::*;
use spnn_engine::runner::run_scenario_shard_with;
use spnn_engine::{queue_fingerprint_with, KernelProfile};
use std::path::PathBuf;

/// FNV-1a over the rendered report — a compact, dependency-free digest
/// for golden pinning (any byte change flips it).
fn digest(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn config(kernel: KernelProfile, threads: usize) -> EngineConfig {
    EngineConfig {
        threads: Some(threads),
        kernel,
        verbose: false,
        cache_dir: None,
        ..EngineConfig::default()
    }
}

fn run(spec: &ScenarioSpec, kernel: KernelProfile, threads: usize) -> EngineReport {
    run_scenario(spec, &config(kernel, threads)).expect("scenario runs")
}

// ---------------------------------------------------------------------------
// Determinism under the fma profile
// ---------------------------------------------------------------------------

/// The fma profile keeps the engine's thread-count invariance: every
/// iteration is a pure function of `(seed, k)` regardless of which
/// worker computes it, so 1 thread and 8 threads emit identical bytes.
#[test]
fn fma_reports_are_bit_stable_across_thread_counts() {
    for spec in [common::tiny_fig4(), common::tiny_fig5()] {
        let one = run(&spec, KernelProfile::Fma, 1);
        let eight = run(&spec, KernelProfile::Fma, 8);
        assert_eq!(to_json(&one), to_json(&eight), "{}: JSON", spec.name);
        assert_eq!(to_csv(&one), to_csv(&eight), "{}: CSV", spec.name);
    }
}

/// Golden pin: the tiny fig4 sweep under `--kernel fma`. A change to
/// this hash means the fma kernels changed their bits — which is a
/// breaking change to the profile's determinism contract and must be
/// deliberate (re-pin per the module docs and docs/kernels.md).
#[test]
fn fma_golden_fig4() {
    let report = run(&common::tiny_fig4(), KernelProfile::Fma, 2);
    let got = digest(&to_json(&report));
    assert_eq!(
        got, 0x82e7_b4ff_a932_dbd3,
        "fig4 fma golden diverged (got {got:#018x})"
    );
}

/// Golden pin: the tiny fig5 zonal sweep under `--kernel fma`.
#[test]
fn fma_golden_fig5() {
    let report = run(&common::tiny_fig5(), KernelProfile::Fma, 2);
    let got = digest(&to_json(&report));
    assert_eq!(
        got, 0x79bc_bf1e_fd2d_9a91,
        "fig5 fma golden diverged (got {got:#018x})"
    );
}

/// The reference profile's bytes are the same with the kernel subsystem
/// in place as they were before it existed: the default config and an
/// explicit `KernelProfile::Reference` agree bit-for-bit.
#[test]
fn reference_profile_is_the_default_and_unchanged() {
    let spec = common::tiny_fig4();
    let default_run = run_scenario(
        &spec,
        &EngineConfig {
            threads: Some(2),
            verbose: false,
            ..EngineConfig::default()
        },
    )
    .expect("default run");
    let explicit = run(&spec, KernelProfile::Reference, 2);
    assert_eq!(to_json(&default_run), to_json(&explicit));
}

// ---------------------------------------------------------------------------
// Executor parity under fma
// ---------------------------------------------------------------------------

fn distribute(
    spec: &ScenarioSpec,
    executor: &dyn Executor,
    shards: usize,
    kernel: KernelProfile,
) -> EngineReport {
    let config = config(kernel, 2);
    let cache = ContextCache::in_memory();
    let cancel = CancelToken::new();
    let ctx = ExecContext {
        config: &config,
        cache: &cache,
        cancel: &cancel,
    };
    run_distributed(spec, executor, shards, &ctx, &mut |_| {})
        .unwrap_or_else(|e| panic!("{} executor failed under fma: {e}", executor.name()))
}

/// Local threads, spawned child processes, and remote workers all
/// produce the same bytes as the unsharded fma run. The spawn executor
/// forwards `--kernel fma` on the child command line; the remote
/// executor appends `&kernel=fma` to the `/shard` query, overriding the
/// worker's own (reference) default.
#[test]
fn every_executor_is_byte_identical_under_fma() {
    let spec = common::tiny_fig4();
    let expected = to_json(&run(&spec, KernelProfile::Fma, 2));

    let local = distribute(&spec, &LocalExecutor, 2, KernelProfile::Fma);
    assert_eq!(to_json(&local), expected, "local executor");

    let spawn = SpawnExecutor {
        exe: PathBuf::from(env!("CARGO_BIN_EXE_spnn")),
    };
    let spawned = distribute(&spec, &spawn, 2, KernelProfile::Fma);
    assert_eq!(to_json(&spawned), expected, "spawn executor");

    // The worker serves with the *reference* default; only the
    // coordinator asks for fma. A worker that ignored the query
    // parameter would return a foreign (reference) fingerprint and be
    // rejected, so success here proves the override is honored.
    let worker = start_server(2);
    let remote = RemoteExecutor::new([format!("http://{worker}")]);
    let report = distribute(&spec, &remote, 2, KernelProfile::Fma);
    assert_eq!(to_json(&report), expected, "remote executor");
}

// ---------------------------------------------------------------------------
// Statistical agreement with the reference profile
// ---------------------------------------------------------------------------

/// The two profiles estimate the same physical quantity: per sweep
/// point, their means agree within the combined 95 % margins of error
/// (plus one test-set quantum for the zero-variance σ = 0 points, where
/// a single borderline sample may legitimately classify differently).
#[test]
fn fma_agrees_with_reference_within_the_margin_of_error() {
    let mut spec = common::tiny_fig4();
    spec.iterations = 32;
    spec.min_iterations = 32; // fixed count: MoE comparison, not early stop
    let reference = run(&spec, KernelProfile::Reference, 2);
    let fma = run(&spec, KernelProfile::Fma, 2);
    assert_eq!(reference.rows.len(), fma.rows.len());
    for (r, f) in reference.rows.iter().zip(&fma.rows) {
        assert_eq!(r.labels, f.labels);
        let tolerance = r.moe95 + f.moe95 + 0.05;
        assert!(
            (r.mean - f.mean).abs() <= tolerance,
            "{:?}: reference {} vs fma {} (moe {} + {})",
            r.labels,
            r.mean,
            f.mean,
            r.moe95,
            f.moe95
        );
    }
}

// ---------------------------------------------------------------------------
// Profile-scoped fingerprints end to end
// ---------------------------------------------------------------------------

/// Partials computed under different profiles never merge: the shard
/// layer rejects them with a typed mismatch *before* comparing
/// fingerprints, so the operator sees "kernel profile" and not a
/// baffling hash diff.
#[test]
fn mixed_profile_partials_do_not_merge() {
    let spec = common::tiny_fig4();
    let cache = ContextCache::in_memory();
    let reference =
        run_scenario_shard_with(&spec, &config(KernelProfile::Reference, 2), &cache, 2, 0)
            .expect("reference shard");
    let fma = run_scenario_shard_with(&spec, &config(KernelProfile::Fma, 2), &cache, 2, 1)
        .expect("fma shard");
    let err = merge_partials(&[reference, fma]).expect_err("profiles must not mix");
    assert!(
        err.to_string().contains("kernel profile"),
        "unexpected merge error: {err}"
    );
}

/// The worker's `/shard` endpoint: `&kernel=fma` switches the computed
/// profile (visible in the partial's fingerprint), an unknown name is a
/// 400, and `/healthz` advertises the profile and CPU tier.
#[test]
fn shard_endpoint_selects_and_validates_the_kernel_profile() {
    let spec = common::tiny_fig4();
    let text = spec.to_text();
    let addr = start_server(2);

    let (status, body) = common::post_shard(addr, "shards=2&index=0&kernel=fma", &text);
    assert_eq!(status, 200, "fma shard failed: {body}");
    let partial = PartialReport::parse(&body).expect("fma partial parses");
    assert_eq!(
        partial.queue_fingerprint,
        queue_fingerprint_with(&spec, KernelProfile::Fma)
    );

    let (status, body) = common::post_shard(addr, "shards=2&index=0", &text);
    assert_eq!(status, 200);
    let partial = PartialReport::parse(&body).expect("reference partial parses");
    assert_eq!(
        partial.queue_fingerprint,
        queue_fingerprint_with(&spec, KernelProfile::Reference),
        "no kernel parameter means the worker's own (reference) profile"
    );

    let (status, body) = common::post_shard(addr, "shards=2&index=0&kernel=turbo", &text);
    assert_eq!(status, 400, "unknown profile must be rejected: {body}");
    assert!(body.contains("kernel profile"), "unhelpful 400: {body}");

    let (status, health) = common::http(addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    assert!(
        health.contains("\"kernel_profile\": \"reference\""),
        "healthz missing profile: {health}"
    );
    assert!(
        health.contains("\"kernel_tier\": \""),
        "healthz missing tier: {health}"
    );
}
