//! Shared integration-test fixtures: the tiny scenario specs, the
//! raw-socket HTTP client (every exchange carries a timeout so a wedged
//! server fails the test instead of hanging it), the in-process server
//! spawn helpers, a Prometheus text-exposition parser, and the
//! [`FaultWorker`] chaos proxy used by `tests/exec.rs` and
//! `tests/steal.rs`.
//!
//! Each integration-test binary compiles its own copy of this module and
//! uses a different subset of it, hence the file-wide `dead_code` allow.
#![allow(dead_code)]

use spnn_engine::prelude::*;
use spnn_photonics::PerturbTarget;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-socket read/write budget for every test HTTP exchange. Far above
/// any healthy response time, but bounded: a deadlocked server turns
/// into a failing assertion, not a stuck CI job.
pub const IO_TIMEOUT: Duration = Duration::from_secs(120);

// ---------------------------------------------------------------------------
// Tiny scenario specs
// ---------------------------------------------------------------------------

/// The standard tiny fig4 sweep: 3 points, 8 iterations in rounds of 4.
pub fn tiny_fig4() -> ScenarioSpec {
    let mut spec = presets::fig4(&RunScale::tiny());
    spec.sweep.modes = vec![PerturbTarget::Both];
    spec.sweep.sigmas = vec![0.0, 0.05, 0.1];
    spec.iterations = 8;
    spec.min_iterations = 2;
    spec.round_size = 4;
    spec
}

/// The tiny fig5 (zonal) sweep — the plan whose queue size is not
/// statically derivable, exercising the prepared-geometry paths.
pub fn tiny_fig5() -> ScenarioSpec {
    use spnn_engine::spec::LayerSelect;
    let mut spec = presets::fig5(&RunScale::tiny());
    spec.iterations = 6;
    spec.min_iterations = 2;
    spec.round_size = 4;
    spec.zonal.layers = LayerSelect::List(vec![0]);
    spec.zonal.stages = vec![spnn_core::Stage::UMesh];
    spec
}

// ---------------------------------------------------------------------------
// Raw-socket HTTP client (the one copy, with timeouts)
// ---------------------------------------------------------------------------

/// Sends one raw HTTP request and returns the **entire** close-delimited
/// response (status line, headers, body) — for asserting on headers such
/// as `Retry-After`.
pub fn http_raw(addr: SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(IO_TIMEOUT))
        .expect("read timeout");
    stream
        .set_write_timeout(Some(IO_TIMEOUT))
        .expect("write timeout");
    stream.write_all(request.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    raw
}

/// Sends one raw HTTP request and returns `(status, body)` of the
/// close-delimited response.
pub fn http(addr: SocketAddr, request: &str) -> (u16, String) {
    let raw = http_raw(addr, request);
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// `POST /run` with the spec text as the body; returns `(status, body)`.
pub fn post_run(addr: SocketAddr, spec_text: &str) -> (u16, String) {
    http(addr, &run_request(spec_text))
}

/// Like [`post_run`], returning the entire raw response.
pub fn post_run_raw(addr: SocketAddr, spec_text: &str) -> String {
    http_raw(addr, &run_request(spec_text))
}

fn run_request(spec_text: &str) -> String {
    format!(
        "POST /run HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
        spec_text.len(),
        spec_text
    )
}

/// `POST /shard` with an explicit query string (`shards=K&index=I` or
/// `span=LO-HI`); returns `(status, body)`.
pub fn post_shard(addr: SocketAddr, query: &str, spec_text: &str) -> (u16, String) {
    http(
        addr,
        &format!(
            "POST /shard?{query} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
            spec_text.len(),
            spec_text
        ),
    )
}

/// Opens a `/run` stream with the given extra header block and reads the
/// socket until `marker` appears, returning the open stream plus what was
/// read so far — the request is provably in flight when this returns.
pub fn open_stream_until(
    addr: SocketAddr,
    headers: &str,
    spec_text: &str,
    marker: &str,
) -> (TcpStream, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(IO_TIMEOUT))
        .expect("read timeout");
    stream
        .write_all(
            format!(
                "POST /run HTTP/1.1\r\nHost: t\r\n{headers}Content-Length: {}\r\n\r\n{}",
                spec_text.len(),
                spec_text
            )
            .as_bytes(),
        )
        .expect("send request");
    let mut seen = String::new();
    let mut buf = [0u8; 1024];
    while !seen.contains(marker) {
        let n = stream.read(&mut buf).expect("read stream");
        assert!(n > 0, "stream closed before {marker:?} appeared: {seen}");
        seen.push_str(&String::from_utf8_lossy(&buf[..n]));
    }
    (stream, seen)
}

// ---------------------------------------------------------------------------
// In-process server spawns
// ---------------------------------------------------------------------------

/// The engine configuration every test server runs with: two threads,
/// quiet, no on-disk caches.
pub fn test_engine() -> EngineConfig {
    EngineConfig {
        threads: Some(2),
        verbose: false,
        cache_dir: None,
        ..EngineConfig::default()
    }
}

/// Binds a server with the config exactly as given (the caller owns the
/// engine part too) and leaves it running for the rest of the process.
pub fn start_server_raw(config: ServeConfig) -> SocketAddr {
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    std::thread::spawn(move || server.run());
    addr
}

/// Binds a server with full control over the traffic config (quotas,
/// budgets, breakers) — the engine part is always the tiny test one.
pub fn start_server_cfg(config: ServeConfig) -> SocketAddr {
    start_server_raw(ServeConfig {
        engine: test_engine(),
        ..config
    })
}

/// Binds a worker service on an ephemeral port with an in-memory cache
/// and a small pool, and leaves it running for the rest of the process.
pub fn start_server(workers: usize) -> SocketAddr {
    start_server_with(workers, Vec::new())
}

/// Like [`start_server`], with a coordinator worker list.
pub fn start_server_with(workers: usize, remote_workers: Vec<String>) -> SocketAddr {
    start_server_cfg(ServeConfig {
        workers,
        remote_workers,
        ..ServeConfig::default()
    })
}

/// Like [`start_server`], with a shared in-memory row cache attached —
/// the configuration the dedup tests need.
pub fn start_server_rowcached(workers: usize) -> SocketAddr {
    start_server_raw(ServeConfig {
        workers,
        engine: EngineConfig {
            row_cache: Some(std::sync::Arc::new(spnn_engine::RowCache::in_memory())),
            ..test_engine()
        },
        ..ServeConfig::default()
    })
}

/// An address that refuses connections: bind an ephemeral port, then
/// free it again.
pub fn dead_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("probe port");
    listener.local_addr().expect("local addr")
}

/// A worker that accepts connections and slams them shut before
/// answering — the shape of a worker killed mid-run.
pub fn flaky_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind flaky");
    let addr = listener.local_addr().expect("local addr");
    std::thread::spawn(move || {
        for conn in listener.incoming().flatten() {
            drop(conn);
        }
    });
    addr
}

// ---------------------------------------------------------------------------
// Scratch dirs and the spnn binary
// ---------------------------------------------------------------------------

/// A per-test temp directory, removed on drop.
pub struct Scratch(pub PathBuf);

impl Scratch {
    pub fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("spnn-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }

    pub fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Runs the built `spnn` binary with a scrubbed environment.
pub fn spnn(args: &[&str]) -> std::process::Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_spnn"))
        .args(args)
        .env_remove("SPNN_THREADS")
        .env_remove("SPNN_ROW_CACHE_DIR")
        .output()
        .expect("run spnn")
}

pub fn assert_ok(out: &std::process::Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

// ---------------------------------------------------------------------------
// Prometheus text-exposition parsing
// ---------------------------------------------------------------------------

/// One metric sample: family name, raw label pairs, value.
pub struct Sample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

/// A parsed `/metrics` body: every sample plus the `# TYPE` declarations.
pub struct Exposition {
    pub samples: Vec<Sample>,
    pub types: std::collections::BTreeMap<String, String>,
}

impl Exposition {
    /// Sum of all samples of `name` across label sets.
    pub fn total(&self, name: &str) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    }
}

/// Parses a Prometheus text-exposition body, panicking on any line that
/// violates the exposition grammar — the line-level checker the CI
/// scrape step mirrors with grep.
pub fn parse_exposition(body: &str) -> Exposition {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    let mut samples = Vec::new();
    let mut types = std::collections::BTreeMap::new();
    for line in body.lines() {
        assert!(!line.is_empty(), "exposition must not contain blank lines");
        if let Some(comment) = line.strip_prefix("# ") {
            let mut words = comment.splitn(3, ' ');
            let keyword = words.next().unwrap_or_default();
            let name = words.next().unwrap_or_default();
            let rest = words.next().unwrap_or_default();
            assert!(
                keyword == "HELP" || keyword == "TYPE",
                "unknown comment keyword in {line:?}"
            );
            assert!(valid_name(name), "bad metric name in {line:?}");
            if keyword == "TYPE" {
                assert!(
                    matches!(rest, "counter" | "gauge" | "histogram"),
                    "bad TYPE in {line:?}"
                );
                types.insert(name.to_string(), rest.to_string());
            }
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("no value in {line:?}"));
        let (name, labels) = match series.split_once('{') {
            None => (series, Vec::new()),
            Some((n, rest)) => {
                let inner = rest
                    .strip_suffix('}')
                    .unwrap_or_else(|| panic!("unterminated labels in {line:?}"));
                let pairs = inner
                    .split(',')
                    .map(|kv| {
                        let (k, v) = kv
                            .split_once('=')
                            .unwrap_or_else(|| panic!("label without '=' in {line:?}"));
                        assert!(valid_name(k), "bad label name in {line:?}");
                        assert!(
                            v.len() >= 2 && v.starts_with('"') && v.ends_with('"'),
                            "unquoted label value in {line:?}"
                        );
                        (k.to_string(), v[1..v.len() - 1].to_string())
                    })
                    .collect();
                (n, pairs)
            }
        };
        assert!(valid_name(name), "bad series name in {line:?}");
        let value = if value == "+Inf" {
            f64::INFINITY
        } else {
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("bad sample value in {line:?}"))
        };
        samples.push(Sample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Exposition { samples, types }
}

/// Scrapes and parses `GET /metrics`.
pub fn scrape(addr: SocketAddr) -> Exposition {
    let (status, body) = http(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200, "{body}");
    parse_exposition(&body)
}

// ---------------------------------------------------------------------------
// FaultWorker: the chaos proxy
// ---------------------------------------------------------------------------

/// What a [`FaultWorker`] does to each proxied exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Relay faithfully.
    None,
    /// Hold each request for this long before forwarding it upstream —
    /// the shape of an overloaded or artificially slowed worker. The
    /// upstream still answers; the answer just arrives late (possibly
    /// after the shard was already stolen and re-dispatched).
    Latency(Duration),
    /// Relay the first `after` response bytes, stall for `stall`, then
    /// relay the rest — a worker that wedges mid-response and recovers.
    MidStall { after: usize, stall: Duration },
    /// Accept and immediately drop the next N connections (connection
    /// reset mid-dispatch), then behave normally.
    DropConnections(u32),
}

/// A TCP proxy wrapping a real worker (an in-process [`Server`] or a
/// `spnn serve` child), injecting one [`Fault`] per exchange. The fault
/// can be swapped at runtime, so one worker can misbehave for the first
/// dispatch and recover for the retry.
pub struct FaultWorker {
    addr: SocketAddr,
    fault: Arc<std::sync::Mutex<Fault>>,
    drops_left: Arc<AtomicU32>,
}

impl FaultWorker {
    /// Starts the proxy in front of `upstream` with an initial fault.
    pub fn start(upstream: SocketAddr, fault: Fault) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind fault proxy");
        let addr = listener.local_addr().expect("proxy addr");
        let shared = Arc::new(std::sync::Mutex::new(Fault::None));
        let drops = Arc::new(AtomicU32::new(0));
        let worker = FaultWorker {
            addr,
            fault: Arc::clone(&shared),
            drops_left: Arc::clone(&drops),
        };
        worker.set_fault(fault);
        std::thread::spawn(move || {
            for client in listener.incoming().flatten() {
                let fault = *shared.lock().expect("fault mode");
                let drops = Arc::clone(&drops);
                std::thread::spawn(move || proxy_one(client, upstream, fault, &drops));
            }
        });
        worker
    }

    /// The proxy's listen address — hand `self.url()` to the coordinator
    /// in place of the real worker's.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Swaps the fault applied to *future* exchanges; in-flight ones
    /// keep the mode they started with.
    pub fn set_fault(&self, fault: Fault) {
        if let Fault::DropConnections(n) = fault {
            self.drops_left.store(n, Ordering::SeqCst);
        }
        *self.fault.lock().expect("fault mode") = fault;
    }
}

/// Relays one close-delimited HTTP exchange through the fault.
fn proxy_one(mut client: TcpStream, upstream: SocketAddr, fault: Fault, drops: &AtomicU32) {
    if let Fault::DropConnections(_) = fault {
        // Decrement-and-drop until the budget is spent, then relay.
        if drops
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            return; // dropping `client` resets the connection
        }
    }
    let _ = client.set_read_timeout(Some(IO_TIMEOUT));
    let _ = client.set_write_timeout(Some(IO_TIMEOUT));
    let Some(request) = read_http_message(&mut client) else {
        return;
    };
    if let Fault::Latency(delay) = fault {
        std::thread::sleep(delay);
    }
    let Ok(mut server) = TcpStream::connect(upstream) else {
        return;
    };
    let _ = server.set_read_timeout(Some(IO_TIMEOUT));
    if server.write_all(&request).is_err() {
        return;
    }
    // Responses are close-delimited: relay until upstream EOF, stalling
    // once mid-stream if asked to.
    let mut relayed = 0usize;
    let mut stalled = false;
    let mut buf = [0u8; 4096];
    loop {
        let n = match server.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let mut chunk = &buf[..n];
        if let Fault::MidStall { after, stall } = fault {
            if !stalled && relayed + n > after {
                let head = after.saturating_sub(relayed);
                if client.write_all(&chunk[..head]).is_err() {
                    return;
                }
                let _ = client.flush();
                std::thread::sleep(stall);
                stalled = true;
                chunk = &chunk[head..];
            }
        }
        relayed += n;
        if client.write_all(chunk).is_err() {
            return;
        }
    }
}

/// Reads one HTTP message (head + `Content-Length` body) off a socket.
/// Returns `None` on a malformed or truncated message.
fn read_http_message(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut message = Vec::new();
    let mut buf = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&message) {
            break pos;
        }
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => return None,
            Ok(n) => message.extend_from_slice(&buf[..n]),
        }
    };
    let head = String::from_utf8_lossy(&message[..head_end]).to_string();
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .unwrap_or(0);
    let total = head_end + 4 + content_length;
    while message.len() < total {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => return None,
            Ok(n) => message.extend_from_slice(&buf[..n]),
        }
    }
    Some(message)
}

fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}
