//! Row-cache integration tests: the acceptance guarantee is that the
//! point-level result cache is **transparent** — a warm re-run computes
//! zero new rows yet assembles a report byte-identical to the cold run,
//! a superset sweep computes only its delta points, corrupt cache files
//! heal by recompute without changing a single report byte, and the CLI
//! surface (`--row-cache-dir`, `--no-row-cache`, `spnn rowcache`)
//! round-trips the same bytes. CI enforces the same `cmp`-level identity
//! across `--exec local`, `--spawn`, and the coordinator path.

use spnn_engine::prelude::*;
use spnn_engine::RowCache;
use spnn_photonics::PerturbTarget;
use std::path::PathBuf;
use std::sync::Arc;

fn tiny_fig4() -> ScenarioSpec {
    let mut spec = presets::fig4(&RunScale::tiny());
    spec.sweep.modes = vec![PerturbTarget::Both];
    spec.sweep.sigmas = vec![0.0, 0.05, 0.1];
    spec.iterations = 8;
    spec.min_iterations = 2;
    spec.round_size = 4;
    spec
}

fn config_with(rc: &Arc<RowCache>) -> EngineConfig {
    EngineConfig {
        row_cache: Some(Arc::clone(rc)),
        ..EngineConfig::default()
    }
}

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("spnn-rowcache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn spnn(args: &[&str]) -> std::process::Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_spnn"))
        .args(args)
        .env_remove("SPNN_THREADS")
        .env_remove("SPNN_ROW_CACHE_DIR")
        .output()
        .expect("run spnn")
}

fn assert_ok(out: &std::process::Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Tentpole acceptance: a warm re-run of an identical spec computes zero
/// new rows (the miss counter does not move) and the assembled report is
/// byte-identical to the cold run's.
#[test]
fn warm_rerun_replays_byte_identical_with_zero_recompute() {
    let spec = tiny_fig4();
    let rc = Arc::new(RowCache::in_memory());
    let ctx = ContextCache::in_memory();
    let config = config_with(&rc);

    let cold = run_scenario_with(&spec, &config, &ctx).expect("cold run");
    let s1 = rc.stats();
    assert_eq!(
        s1.misses, 3,
        "the cold run must look up (and miss) every point exactly once"
    );

    let warm = run_scenario_with(&spec, &config, &ctx).expect("warm run");
    let s2 = rc.stats();
    assert_eq!(to_json(&warm), to_json(&cold), "JSON diverged on replay");
    assert_eq!(to_csv(&warm), to_csv(&cold), "CSV diverged on replay");
    assert_eq!(
        s2.misses, s1.misses,
        "the warm run must not compute any row"
    );
    assert!(
        s2.mem_hits >= s1.mem_hits + 3,
        "the warm run must replay every point from the cache"
    );

    // Transparency: the cached report equals a run with no cache at all.
    let bare =
        run_scenario_with(&spec, &EngineConfig::default(), &ctx).expect("uncached reference");
    assert_eq!(to_json(&bare), to_json(&cold));
}

/// Satellite acceptance: after a base run, a spec with one extra sweep
/// point computes only the delta row; every overlapping row is
/// bit-identical to the cold report (adaptive early-stop state included,
/// since iterations/stopped_early round-trip through the cache).
#[test]
fn superset_sweep_computes_only_the_delta_rows() {
    let base = tiny_fig4();
    let mut superset = tiny_fig4();
    superset.sweep.sigmas.push(0.15);

    let rc = Arc::new(RowCache::in_memory());
    let ctx = ContextCache::in_memory();
    let config = config_with(&rc);

    run_scenario_with(&base, &config, &ctx).expect("base run");
    let s1 = rc.stats();

    let superset_report = run_scenario_with(&superset, &config, &ctx).expect("superset run");
    let s2 = rc.stats();
    assert_eq!(superset_report.rows.len(), 4);
    assert_eq!(
        s2.misses - s1.misses,
        1,
        "only the one new sweep point may compute"
    );
    assert_eq!(
        s2.mem_hits - s1.mem_hits,
        3,
        "every overlapping point must serve from the cache"
    );

    // Overlapping rows are bit-identical to a cold, cache-free report.
    let cold = run_scenario_with(&base, &EngineConfig::default(), &ContextCache::in_memory())
        .expect("cold reference");
    for want in &cold.rows {
        let got = superset_report
            .rows
            .iter()
            .find(|r| r.topology == want.topology && r.labels == want.labels)
            .expect("overlapping row present in superset report");
        assert_eq!(got.mean.to_bits(), want.mean.to_bits());
        assert_eq!(got.std_dev.to_bits(), want.std_dev.to_bits());
        assert_eq!(got.moe95.to_bits(), want.moe95.to_bits());
        assert_eq!(
            (got.iterations, got.stopped_early),
            (want.iterations, want.stopped_early)
        );
    }
}

/// Satellite acceptance: truncated, bit-flipped, and magic-skewed row
/// files all heal by recompute — the warm report stays byte-identical to
/// the cold one, and the healed entries republish so a third run replays
/// with zero misses.
#[test]
fn corrupt_row_files_heal_by_recompute_with_identical_reports() {
    let scratch = Scratch::new("heal");
    let dir = scratch.path("rows");
    let spec = tiny_fig4();
    let ctx = ContextCache::in_memory();

    let cold = {
        let rc = Arc::new(RowCache::on_disk(dir.clone()));
        run_scenario_with(&spec, &config_with(&rc), &ctx).expect("cold run")
    };

    let mut row_files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("cache dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("row-"))
        })
        .collect();
    row_files.sort();
    assert_eq!(row_files.len(), 3, "one file per sweep point");

    // Three distinct failure modes: a torn write, a flipped payload bit,
    // and a header from some other format entirely.
    let bytes = std::fs::read(&row_files[0]).expect("read");
    std::fs::write(&row_files[0], &bytes[..bytes.len() / 2]).expect("truncate");
    let mut bytes = std::fs::read(&row_files[1]).expect("read");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&row_files[1], bytes).expect("bit-flip");
    let mut bytes = std::fs::read(&row_files[2]).expect("read");
    bytes[0] ^= 0xff;
    std::fs::write(&row_files[2], bytes).expect("magic-skew");

    // A fresh instance (empty memory tier) heals all three and
    // recomputes — the report bytes cannot tell.
    let rc = Arc::new(RowCache::on_disk(dir.clone()));
    let warm = run_scenario_with(&spec, &config_with(&rc), &ctx).expect("warm run");
    assert_eq!(to_json(&warm), to_json(&cold), "JSON diverged after heal");
    assert_eq!(to_csv(&warm), to_csv(&cold), "CSV diverged after heal");
    let stats = rc.stats();
    assert_eq!(
        stats.corrupt_healed, 3,
        "each unusable file heals exactly once"
    );

    // The heal republished every entry: a third instance replays the
    // whole report without a single miss.
    let rc = Arc::new(RowCache::on_disk(dir));
    let replay = run_scenario_with(&spec, &config_with(&rc), &ctx).expect("replay run");
    assert_eq!(to_json(&replay), to_json(&cold));
    assert_eq!(rc.stats().misses, 0, "healed entries must republish");
}

/// CLI surface: `spnn run` with the on-disk row cache is byte-identical
/// warm vs cold vs `--no-row-cache`, and the `spnn rowcache`
/// subcommands (path/ls/gc) and `SPNN_ROW_CACHE_DIR` operate on the
/// same directory the runs populate.
#[test]
fn cli_rowcache_warm_rerun_and_subcommands() {
    let scratch = Scratch::new("cli");
    let spec_path = scratch.path("tiny.scn");
    std::fs::write(&spec_path, tiny_fig4().to_text()).expect("write spec");
    let rows = scratch.path("rows");
    let cache = scratch.path("cache");
    let spec = spec_path.to_str().unwrap();
    let rows_s = rows.to_str().unwrap();
    let cache_s = cache.to_str().unwrap();

    let run_to = |out_name: &str, extra: &[&str]| {
        let out_path = scratch.path(out_name);
        let mut args = vec![
            "run",
            spec,
            "--quiet",
            "--format",
            "json",
            "--cache-dir",
            cache_s,
        ];
        args.extend_from_slice(extra);
        args.extend_from_slice(&["--out", out_path.to_str().unwrap()]);
        assert_ok(&spnn(&args), out_name);
        std::fs::read(&out_path).expect("report bytes")
    };

    let cold = run_to("cold.json", &["--row-cache-dir", rows_s]);
    let warm = run_to("warm.json", &["--row-cache-dir", rows_s]);
    assert_eq!(cold, warm, "warm re-run must be byte-identical");
    let off = run_to("off.json", &["--no-row-cache"]);
    assert_eq!(cold, off, "--no-row-cache must not change report bytes");

    let out = spnn(&["rowcache", "path", "--row-cache-dir", rows_s]);
    assert_ok(&out, "rowcache path");
    assert!(String::from_utf8_lossy(&out.stdout).contains(rows_s));

    let out = spnn(&["rowcache", "ls", "--row-cache-dir", rows_s]);
    assert_ok(&out, "rowcache ls");
    let ls = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        ls.lines().filter(|l| l.contains(" row ")).count() >= 3,
        "ls must list every row entry:\n{ls}"
    );
    assert!(
        ls.lines().any(|l| l.contains(" manifest ")),
        "ls must list the run manifest:\n{ls}"
    );

    let out = spnn(&[
        "rowcache",
        "gc",
        "--row-cache-dir",
        rows_s,
        "--max-entries",
        "1",
    ]);
    assert_ok(&out, "rowcache gc");
    let survivors = std::fs::read_dir(&rows)
        .expect("rows dir")
        .filter(|e| {
            e.as_ref()
                .expect("dir entry")
                .path()
                .extension()
                .is_some_and(|x| x == "spnnrow")
        })
        .count();
    assert_eq!(survivors, 1, "gc --max-entries 1 must keep exactly one");

    // SPNN_ROW_CACHE_DIR is the environment spelling of --row-cache-dir.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_spnn"))
        .args(["rowcache", "path"])
        .env("SPNN_ROW_CACHE_DIR", rows_s)
        .output()
        .expect("run spnn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains(rows_s));
}
