//! Load harness (the CI `load-test` job): N ≥ 16 concurrent clients —
//! a cold/warm-cache/over-budget mix — against a small admission queue.
//! Acceptance: every admitted stream assembles **byte-identical** to the
//! batch report, every shed request gets a well-formed `429` with a
//! `Retry-After` header, over-budget specs are rejected with `400`
//! naming the budget, and the process RSS stays bounded throughout
//! (sampled from `/proc/self/status`).

mod common;

use common::{http_raw, post_run_raw, tiny_fig4};
use spnn_engine::prelude::*;
use spnn_engine::{QuotaConfig, RequestBudget};

/// A spec whose fixed per-point work keeps a worker busy long enough for
/// the burst below to find both workers occupied.
fn slow_spec() -> ScenarioSpec {
    let mut spec = tiny_fig4();
    spec.iterations = 64;
    spec.min_iterations = 64;
    spec
}

/// A spec that statically exceeds the configured `max_points` budget.
fn over_budget_spec() -> ScenarioSpec {
    let mut spec = tiny_fig4();
    spec.sweep.sigmas = (0..12).map(|i| f64::from(i) * 0.01).collect();
    spec
}

/// The current resident set size in kilobytes, from `/proc/self/status`.
/// `None` on platforms without procfs — the RSS gate is then skipped.
fn rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// How one response was handled, for the aggregate accounting.
enum Outcome {
    /// `200`, stream assembled byte-identical to the batch report.
    Streamed,
    /// `429` with a well-formed `Retry-After` header.
    Shed,
    /// `400` naming the budget (over-budget spec, admitted then rejected).
    BudgetRejected,
}

fn classify(raw: &str, reference_json: &str) -> Outcome {
    let body = raw.split_once("\r\n\r\n").map_or("", |(_, b)| b);
    if raw.starts_with("HTTP/1.1 200 ") {
        let assembled = spnn_engine::assemble_report(body)
            .unwrap_or_else(|e| panic!("admitted stream corrupt ({e:?}): {raw}"));
        assert_eq!(
            to_json(&assembled),
            reference_json,
            "admitted stream diverged from the batch report"
        );
        return Outcome::Streamed;
    }
    if raw.starts_with("HTTP/1.1 429 ") {
        let retry = raw
            .lines()
            .find_map(|l| l.strip_prefix("Retry-After: "))
            .unwrap_or_else(|| panic!("429 without Retry-After: {raw}"));
        let secs: u64 = retry
            .trim()
            .parse()
            .expect("Retry-After must be integer seconds");
        assert!((1..=60).contains(&secs), "Retry-After out of range: {secs}");
        assert!(body.contains("\"error\""), "429 body must be JSON: {raw}");
        return Outcome::Shed;
    }
    if raw.starts_with("HTTP/1.1 400 ") {
        assert!(
            body.contains("budget exceeded"),
            "400 under load must name the budget: {raw}"
        );
        return Outcome::BudgetRejected;
    }
    panic!("unexpected response under load: {raw}");
}

/// CI acceptance: 18 concurrent clients against 2 workers and a 2-slot
/// admission queue. Zero dropped or corrupted admitted streams, correct
/// shedding for the rest, bounded RSS.
#[test]
fn concurrent_mixed_clients_shed_cleanly_and_stream_byte_identical() {
    let addr = common::start_server_cfg(ServeConfig {
        workers: 2,
        queue_depth: 2,
        budget: RequestBudget {
            max_points: 10,
            ..Default::default()
        },
        quota: QuotaConfig::default(),
        ..ServeConfig::default()
    });

    let fast = tiny_fig4();
    let slow = slow_spec();
    let fast_json = to_json(&run_scenario(&fast, &EngineConfig::default()).expect("batch fast"));
    let slow_json = to_json(&run_scenario(&slow, &EngineConfig::default()).expect("batch slow"));
    let fast_text = fast.to_text();
    let slow_text = slow.to_text();
    let over_text = over_budget_spec().to_text();

    let rss_start = rss_kb();

    // Two slow "blocker" streams first: they hold both pool workers
    // (cold cache — they also train), so the burst below meets a full
    // house. They are plain clients too: their streams must assemble.
    let blockers: Vec<_> = (0..2)
        .map(|_| {
            let text = slow_text.clone();
            std::thread::spawn(move || post_run_raw(addr, &text))
        })
        .collect();
    // Give the blockers time to be admitted and start streaming.
    std::thread::sleep(std::time::Duration::from_millis(300));

    // The burst: 16 concurrent clients — warm-cache streams, over-budget
    // specs, and enough volume that the 2-slot queue must shed.
    let burst: Vec<_> = (0..16)
        .map(|i| {
            let text = if i % 5 == 4 {
                over_text.clone()
            } else {
                fast_text.clone()
            };
            std::thread::spawn(move || post_run_raw(addr, &text))
        })
        .collect();

    let mut streamed = 0usize;
    let mut shed = 0usize;
    let mut budget_rejected = 0usize;
    for handle in blockers {
        let raw = handle.join().expect("blocker thread");
        match classify(&raw, &slow_json) {
            Outcome::Streamed => streamed += 1,
            Outcome::Shed => shed += 1,
            Outcome::BudgetRejected => panic!("blocker cannot be over budget"),
        }
    }
    for handle in burst {
        let raw = handle.join().expect("burst thread");
        match classify(&raw, &fast_json) {
            Outcome::Streamed => streamed += 1,
            Outcome::Shed => shed += 1,
            Outcome::BudgetRejected => budget_rejected += 1,
        }
    }
    assert_eq!(
        streamed + shed + budget_rejected,
        18,
        "every client accounted for"
    );
    assert!(streamed >= 2, "the admitted blockers must have streamed");
    assert!(
        shed >= 1,
        "16 concurrent clients against 2 workers + 2 queue slots must shed \
         (streamed={streamed} budget_rejected={budget_rejected})"
    );

    // RSS stayed bounded: the shed path buffers nothing, the admitted
    // paths stream row-by-row. The 2 GiB ceiling is far above anything a
    // healthy run of this size touches, but catches a leak outright.
    if let (Some(start), Some(end)) = (rss_start, rss_kb()) {
        assert!(
            end < 2 * 1024 * 1024,
            "RSS grew unbounded under load: {start} kB -> {end} kB"
        );
    }

    // The metrics surface recorded the storm.
    let metrics = http_raw(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    for name in [
        "spnn_admission_shed_total",
        "spnn_admission_accepted_total",
        "spnn_admission_queue_depth",
        "spnn_admission_queue_wait_seconds",
        "spnn_request_latency_quantile_seconds",
    ] {
        assert!(metrics.contains(name), "missing {name} in /metrics");
    }

    // After the storm: a fresh client is admitted and cmp-gates against
    // the batch report one more time (warm cache now).
    let raw = post_run_raw(addr, &fast_text);
    assert!(matches!(classify(&raw, &fast_json), Outcome::Streamed));
}
