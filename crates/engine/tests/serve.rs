//! Scenario-service integration tests: the acceptance guarantee is that
//! a report assembled from `spnn serve`'s NDJSON stream is
//! **byte-for-byte identical** (CSV and JSON) to the batch `spnn run`
//! report for the same spec, that concurrent requests share one
//! trained-context cache (the second request trains zero times), that
//! malformed specs are rejected with `400` before any work starts — and
//! that `spnn run --shards k --spawn` output is `cmp`-identical to both
//! the unsharded run and a manual shard-and-merge (also enforced at
//! scale by the CI `serve` and `shard-merge` jobs).

mod common;

use common::{
    http, open_stream_until, post_run, post_shard, scrape, spnn, start_server, start_server_cfg,
    start_server_rowcached, start_server_with, tiny_fig4, tiny_fig5, Exposition, Sample, Scratch,
};
use spnn_engine::prelude::*;
use spnn_engine::runner::StreamEvent;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;

/// The streaming driver must deliver exactly the rows of the report it
/// returns, in order, after a `Started` + per-topology preamble.
#[test]
fn streaming_events_mirror_the_returned_report() {
    let spec = tiny_fig4();
    let cache = spnn_engine::ContextCache::in_memory();
    let config = EngineConfig::default();
    let mut starts = 0usize;
    let mut topologies = 0usize;
    let mut rows: Vec<(usize, String, u64)> = Vec::new();
    let report = run_scenario_streaming_with(&spec, &config, &cache, &mut |event| match event {
        StreamEvent::Started {
            scenario,
            total_points,
        } => {
            assert_eq!(scenario, "fig4");
            assert_eq!(total_points, 3);
            starts += 1;
        }
        StreamEvent::Topology(t) => {
            assert_eq!(t.topology, "clements");
            topologies += 1;
        }
        StreamEvent::Row { index, row } => {
            rows.push((index, row.topology.clone(), row.mean.to_bits()));
        }
        _ => {}
    })
    .expect("streaming run");
    assert_eq!((starts, topologies), (1, 1));
    assert_eq!(rows.len(), report.rows.len());
    for (i, (index, topology, mean_bits)) in rows.iter().enumerate() {
        assert_eq!(*index, i, "rows must stream in queue order");
        assert_eq!(*topology, report.rows[i].topology);
        assert_eq!(*mean_bits, report.rows[i].mean.to_bits());
    }

    // And the batch entry point is the streaming one with a no-op
    // observer — the same report, bit for bit.
    let batch = run_scenario_with(&spec, &config, &cache).expect("batch run");
    assert_eq!(to_json(&batch), to_json(&report));
}

/// Acceptance criterion: a report assembled from the service's NDJSON
/// stream is byte-identical (JSON and CSV) to the batch report.
#[test]
fn streamed_fig4_assembles_byte_identical_to_batch() {
    let addr = start_server(2);
    for spec in [tiny_fig4(), tiny_fig5()] {
        let reference = run_scenario(&spec, &EngineConfig::default()).expect("batch run");
        let (status, stream) = post_run(addr, &spec.to_text());
        assert_eq!(status, 200, "stream: {stream}");
        let assembled = spnn_engine::assemble_report(&stream).expect("assemble");
        assert_eq!(
            to_json(&assembled),
            to_json(&reference),
            "{}: JSON diverged",
            spec.name
        );
        assert_eq!(
            to_csv(&assembled),
            to_csv(&reference),
            "{}: CSV diverged",
            spec.name
        );
    }
}

/// Two *concurrent* identical requests share the service's
/// process-lifetime cache: exactly one trains, the second request trains
/// zero times — and both streams carry identical rows.
#[test]
fn concurrent_requests_share_one_cache() {
    let addr = start_server(4);
    let text = tiny_fig4().to_text();
    let (a, b) = std::thread::scope(|scope| {
        let ta = scope.spawn(|| post_run(addr, &text));
        let tb = scope.spawn(|| post_run(addr, &text));
        (ta.join().expect("request a"), tb.join().expect("request b"))
    });
    assert_eq!(a.0, 200);
    assert_eq!(b.0, 200);
    assert_eq!(a.1, b.1, "identical requests must stream identical bytes");

    let (status, stats) = http(addr, "GET /cache/stats HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    assert!(
        stats.contains("\"trains\": 1"),
        "second request must train 0 times: {stats}"
    );

    let (status, health) = http(addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    assert!(health.contains("\"runs_completed\": 2"), "{health}");
}

/// Tentpole acceptance: N identical in-flight `/run` bodies produce one
/// execution and N byte-identical streams. With the row cache attached
/// the single-execution claim is race-proof: a request that misses the
/// in-flight dedup window replays its rows from the cache instead of
/// recomputing, so `spnn_points_total` stays at one sweep's worth no
/// matter how the requests interleave.
#[test]
fn identical_inflight_runs_share_one_execution() {
    const N: usize = 6;
    let addr = start_server_rowcached(8);
    let text = tiny_fig4().to_text();
    let results: Vec<(u16, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|_| scope.spawn(|| post_run(addr, &text)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("request"))
            .collect()
    });
    for (status, body) in &results {
        assert_eq!(*status, 200, "{body}");
        assert_eq!(
            body, &results[0].1,
            "every subscriber must stream identical bytes"
        );
    }

    let exp = scrape(addr);
    assert_eq!(
        exp.total("spnn_points_total"),
        3.0,
        "N identical requests must compute exactly one sweep's worth of points"
    );
    assert_eq!(exp.total("spnn_runs_completed_total"), N as f64);
    assert_eq!(
        exp.total("spnn_rowcache_dedup_subscribers"),
        0.0,
        "the fan-out gauge must return to zero"
    );
    assert!(exp.total("spnn_rowcache_dedup_total") <= (N - 1) as f64);

    // A straggler arriving after everything finished replays entirely
    // from the row cache: same bytes, still zero new points.
    let (status, body) = post_run(addr, &text);
    assert_eq!(status, 200);
    assert_eq!(body, results[0].1);
    let exp = scrape(addr);
    assert_eq!(exp.total("spnn_points_total"), 3.0);
    assert!(
        exp.total("spnn_rowcache_hits_total") >= 3.0,
        "the replayed request must hit the row cache for every point"
    );
}

/// A client that disconnects mid-stream must not poison the shared
/// execution: the run completes server-side (subscribers may be fanned
/// off the same buffer) and an identical request still receives the
/// full stream, byte-identical to the batch report.
#[test]
fn mid_stream_disconnect_does_not_poison_other_requests() {
    let addr = start_server_rowcached(4);
    let spec = tiny_fig4();
    let text = spec.to_text();

    // Fire a request and slam the connection shut right after the
    // status line — mid-stream from the server's point of view.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(
                format!(
                    "POST /run HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
                    text.len(),
                    text
                )
                .as_bytes(),
            )
            .expect("send");
        let mut head = [0u8; 16];
        stream.read_exact(&mut head).expect("status line");
        assert!(head.starts_with(b"HTTP/1.1 200"));
    }

    // An identical request — racing the dying one, or replaying from the
    // row cache it warmed — still gets the complete report.
    let (status, body) = post_run(addr, &text);
    assert_eq!(status, 200);
    let reference = run_scenario(&spec, &EngineConfig::default()).expect("batch run");
    let assembled = spnn_engine::assemble_report(&body).expect("assemble");
    assert_eq!(to_json(&assembled), to_json(&reference));
    assert_eq!(to_csv(&assembled), to_csv(&reference));
}

/// Malformed specs are rejected with 400 and the parser's line-numbered
/// message, before any training or sweeping happens.
#[test]
fn malformed_spec_is_rejected_with_400() {
    let addr = start_server(1);

    // Unparseable: the line number points at the offending line.
    let (status, body) = post_run(addr, "name = x\nbogus_key = 1\n");
    assert_eq!(status, 400);
    assert!(body.contains("\"line\": 2"), "{body}");
    assert!(body.contains("bogus_key"), "{body}");

    // Line-by-line parseable but inconsistent as a whole: the parser's
    // end-of-input validation reports it as line 0.
    let mut invalid = tiny_fig4();
    invalid.iterations = 0;
    let (status, body) = post_run(addr, &invalid.to_text());
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("iterations must be positive"), "{body}");
    assert!(body.contains("\"line\": 0"), "{body}");

    // Non-UTF-8 bodies are rejected too.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"POST /run HTTP/1.1\r\nContent-Length: 2\r\n\r\n\xff\xfe")
        .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");

    // An oversized spec body gets the 413 JSON, not a connection reset:
    // the server drains what the client is still sending before closing.
    let huge = "x".repeat(spnn_engine::http::MAX_BODY_BYTES + 1);
    let (status, body) = post_run(addr, &huge);
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("exceeds"), "{body}");

    // Nothing ran: no training happened for any rejected request.
    let (_, stats) = http(addr, "GET /cache/stats HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(stats.contains("\"trains\": 0"), "{stats}");
}

/// The worker endpoint: `POST /shard?shards=K&index=I` returns exactly
/// the partial report `spnn run --shards K --shard-index I` computes —
/// the three shards merge into a report byte-identical to the batch run.
#[test]
fn shard_endpoint_partials_merge_byte_identical() {
    let addr = start_server(2);
    let spec = tiny_fig4();
    let text = spec.to_text();
    let mut partials = Vec::new();
    for i in 0..3 {
        let (status, body) = http(
            addr,
            &format!(
                "POST /shard?shards=3&index={i} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
                text.len(),
                text
            ),
        );
        assert_eq!(status, 200, "{body}");
        partials.push(spnn_engine::PartialReport::parse(&body).expect("parse partial"));
    }
    let merged = merge_partials(&partials).expect("merge worker partials");
    let reference = run_scenario(&spec, &EngineConfig::default()).expect("batch run");
    assert_eq!(to_json(&merged), to_json(&reference));
    assert_eq!(to_csv(&merged), to_csv(&reference));

    let (status, health) = http(addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    assert!(health.contains("\"shards_completed\": 3"), "{health}");
}

/// The weighted/stealing wire form: `POST /shard?span=LO-HI` names an
/// explicit round-space range. Unevenly sized spans merge byte-identical
/// to the batch run, exactly like the equal 1-of-K form.
#[test]
fn shard_endpoint_span_partials_merge_byte_identical() {
    let addr = start_server(2);
    let spec = tiny_fig4();
    let text = spec.to_text();
    // tiny_fig4 compiles to 3 points x 2 rounds = 6 round-space units;
    // slice them unevenly, the way a weighted plan would.
    let mut partials = Vec::new();
    for span in ["span=0-1", "span=1-4", "span=4-6"] {
        let (status, body) = post_shard(addr, span, &text);
        assert_eq!(status, 200, "{span}: {body}");
        partials.push(spnn_engine::PartialReport::parse(&body).expect("parse span partial"));
    }
    let merged = merge_partials(&partials).expect("merge span partials");
    let reference = run_scenario(&spec, &EngineConfig::default()).expect("batch run");
    assert_eq!(to_json(&merged), to_json(&reference));
    assert_eq!(to_csv(&merged), to_csv(&reference));
}

/// Bad shard coordinates are rejected with 400 before any work.
#[test]
fn shard_endpoint_validates_its_query() {
    let addr = start_server(1);
    let text = tiny_fig4().to_text();
    for query in [
        "",                  // missing both
        "?shards=3",         // missing index
        "?shards=3&index=3", // out of range
        "?shards=0&index=0", // zero shards
        "?shards=x&index=0", // not an integer
        "?span=3-3",         // empty span
        "?span=4-2",         // reversed span
        "?span=0",           // no '-'
        "?span=a-b",         // not integers
        "?span=0-999",       // out of range for the queue
    ] {
        let (status, body) = http(
            addr,
            &format!(
                "POST /shard{query} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
                text.len(),
                text
            ),
        );
        assert_eq!(status, 400, "query {query:?}: {body}");
    }
}

/// Satellite acceptance: `POST /run?format=csv` streams bytes identical
/// to `spnn run --format csv` (the writers are shared), and unknown
/// formats are rejected.
#[test]
fn run_format_csv_streams_the_exact_csv() {
    let addr = start_server(2);
    let spec = tiny_fig4();
    let text = spec.to_text();
    let (status, stream) = http(
        addr,
        &format!(
            "POST /run?format=csv HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
            text.len(),
            text
        ),
    );
    assert_eq!(status, 200, "{stream}");
    let reference = run_scenario(&spec, &EngineConfig::default()).expect("batch run");
    assert_eq!(stream, to_csv(&reference), "streamed CSV must equal to_csv");

    let (status, body) = http(
        addr,
        &format!(
            "POST /run?format=yaml HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
            text.len(),
            text
        ),
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("unknown format"), "{body}");
}

/// Acceptance criterion: a coordinator service dispatching across
/// remote workers streams NDJSON that assembles byte-identical to the
/// batch report — including when one configured worker is dead and its
/// shard is retried on a live one.
#[test]
fn coordinator_streams_byte_identical_reports_despite_a_dead_worker() {
    let worker_a = start_server(2);
    let worker_b = start_server(2);
    // A dead URL: bind an ephemeral port, then free it again.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let coordinator = start_server_with(
        2,
        vec![
            format!("http://{dead}"),
            format!("http://{worker_a}"),
            format!("http://{worker_b}"),
        ],
    );
    for spec in [tiny_fig4(), tiny_fig5()] {
        let reference = run_scenario(&spec, &EngineConfig::default()).expect("batch run");
        let (status, stream) = post_run(coordinator, &spec.to_text());
        assert_eq!(status, 200, "{stream}");
        let assembled = spnn_engine::assemble_report(&stream).expect("assemble");
        assert_eq!(
            to_json(&assembled),
            to_json(&reference),
            "{}: coordinator stream diverged",
            spec.name
        );
        assert_eq!(to_csv(&assembled), to_csv(&reference), "{}", spec.name);
    }
    // CSV works through the coordinator too — same writers, same bytes.
    let spec = tiny_fig4();
    let text = spec.to_text();
    let (status, stream) = http(
        coordinator,
        &format!(
            "POST /run?format=csv HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
            text.len(),
            text
        ),
    );
    assert_eq!(status, 200);
    let reference = run_scenario(&spec, &EngineConfig::default()).expect("batch run");
    assert_eq!(stream, to_csv(&reference));
}

// ---------------------------------------------------------------------------
// GET /metrics: Prometheus text exposition
// ---------------------------------------------------------------------------

/// Satellite acceptance: after one `/run`, the worker's `/metrics` body
/// is grammatically valid exposition text, the request/cache/engine
/// counters are non-zero, and every histogram is internally consistent
/// (cumulative buckets are monotone and the `+Inf` bucket equals
/// `_count`).
#[test]
fn metrics_exposition_is_well_formed_after_a_run() {
    let addr = start_server(2);
    let (status, _) = post_run(addr, &tiny_fig4().to_text());
    assert_eq!(status, 200);
    let exp = scrape(addr);

    for name in [
        "spnn_requests_total",
        "spnn_runs_completed_total",
        "spnn_cache_trains_total",
        "spnn_points_total",
        "spnn_mc_iterations_total",
    ] {
        assert!(
            exp.total(name) > 0.0,
            "{name} must be non-zero after one /run"
        );
        assert_eq!(
            exp.types.get(name).map(String::as_str),
            Some("counter"),
            "{name} must be declared a counter"
        );
    }

    // Histogram invariants, for every histogram family present.
    let mut histograms = 0usize;
    for s in &exp.samples {
        let Some(base) = s.name.strip_suffix("_count") else {
            continue;
        };
        if exp.types.get(base).map(String::as_str) != Some("histogram") {
            continue;
        }
        histograms += 1;
        let buckets: Vec<&Sample> = exp
            .samples
            .iter()
            .filter(|b| {
                b.name == format!("{base}_bucket")
                    && b.labels
                        .iter()
                        .filter(|(k, _)| k != "le")
                        .eq(s.labels.iter())
            })
            .collect();
        assert!(!buckets.is_empty(), "{base}: histogram without buckets");
        // Buckets render in ascending `le` order; counts are cumulative.
        let mut prev = 0.0f64;
        for b in &buckets {
            assert!(
                b.value >= prev,
                "{base}: cumulative bucket counts must be monotone"
            );
            prev = b.value;
        }
        let inf = buckets.last().expect("at least the +Inf bucket");
        assert_eq!(
            inf.labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.as_str()),
            Some("+Inf"),
            "{base}: last bucket must be +Inf"
        );
        assert_eq!(inf.value, s.value, "{base}: +Inf bucket must equal _count");
        let sum = exp
            .samples
            .iter()
            .find(|b| b.name == format!("{base}_sum") && b.labels == s.labels)
            .unwrap_or_else(|| panic!("{base}: missing _sum"));
        assert!(
            sum.value >= 0.0 && sum.value.is_finite(),
            "{base}: _sum must be a finite non-negative duration"
        );
    }
    assert!(
        histograms >= 2,
        "expected request and phase histograms, saw {histograms}"
    );
}

/// Satellite acceptance: counters only move up — a second `/run` bumps
/// the run counter from 1 to 2 and leaves every counter sample at or
/// above its previous reading.
#[test]
fn metrics_counters_are_monotonic_across_runs() {
    let addr = start_server(2);
    let text = tiny_fig4().to_text();
    let before = scrape(addr);
    assert_eq!(before.total("spnn_runs_completed_total"), 0.0);

    let (status, _) = post_run(addr, &text);
    assert_eq!(status, 200);
    let mid = scrape(addr);
    assert_eq!(mid.total("spnn_runs_completed_total"), 1.0);

    let (status, _) = post_run(addr, &text);
    assert_eq!(status, 200);
    let after = scrape(addr);
    assert_eq!(after.total("spnn_runs_completed_total"), 2.0);

    // The warm second run hits the cache instead of training again.
    assert_eq!(after.total("spnn_cache_trains_total"), 1.0);
    assert!(after.total("spnn_cache_hits_total") >= 1.0);

    for s in &mid.samples {
        if mid.types.get(&s.name).map(String::as_str) != Some("counter") {
            continue;
        }
        let later = after
            .samples
            .iter()
            .find(|a| a.name == s.name && a.labels == s.labels)
            .unwrap_or_else(|| panic!("{}: counter series vanished", s.name));
        assert!(
            later.value >= s.value,
            "{}: counter went backwards ({} -> {})",
            s.name,
            s.value,
            later.value
        );
    }
}

/// Unknown routes 404, wrong methods 405, and the health endpoint stays
/// truthful about failures.
#[test]
fn routing_and_error_statuses() {
    let addr = start_server(1);
    let (status, _) = http(addr, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "GET /run HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 405);
    let (status, _) = http(addr, "GET /shard HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 405);
    let (status, _) = http(addr, "DELETE /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 405);
    let (status, _) = http(addr, "gibberish\r\n\r\n");
    assert_eq!(status, 400);
}

// ---------------------------------------------------------------------------
// The `--spawn` local shard launcher (process-level, via the built binary)
// ---------------------------------------------------------------------------

use common::assert_ok;

/// `/healthz` self-identifies: role, crate version, and an uptime the
/// scraper can alert on.
#[test]
fn healthz_reports_role_version_and_uptime() {
    let worker = start_server(1);
    let (status, health) = http(worker, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    assert!(health.contains("\"role\": \"worker\""), "{health}");
    assert!(health.contains("\"cores\": "), "{health}");
    assert!(health.contains("\"uptime_seconds\": "), "{health}");
    assert!(
        health.contains(&format!("\"version\": \"{}\"", env!("CARGO_PKG_VERSION"))),
        "{health}"
    );

    let coordinator = start_server_with(1, vec![format!("http://{worker}")]);
    let (_, health) = http(coordinator, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(health.contains("\"role\": \"coordinator\""), "{health}");
}

/// Tentpole acceptance: instrumentation reads clocks but never feeds the
/// computation — the report bytes are identical with the structured log
/// cranked to `trace` (and `--stats` on) versus fully quiet, across a
/// cold and a warm cache.
#[test]
fn trace_logging_never_changes_report_bytes() {
    let scratch = Scratch::new("trace-determinism");
    let spec_path = scratch.path("tiny.scn");
    std::fs::write(&spec_path, tiny_fig4().to_text()).expect("write spec");
    let cache = scratch.path("cache");

    let run = |env: &[(&str, &str)], extra_args: &[&str]| {
        let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_spnn"));
        // --no-row-cache keeps this about the trained-context cache: a
        // row replay on the warm run would bypass the traced code paths.
        cmd.args([
            "run",
            spec_path.to_str().unwrap(),
            "--quiet",
            "--no-row-cache",
            "--format",
            "json",
            "--cache-dir",
            cache.to_str().unwrap(),
        ])
        .args(extra_args)
        .env_remove("SPNN_THREADS")
        .env_remove("SPNN_LOG")
        .env_remove("SPNN_LOG_FORMAT");
        for (k, v) in env {
            cmd.env(k, v);
        }
        let out = cmd.output().expect("run spnn");
        assert!(
            out.status.success(),
            "spnn run failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out
    };

    let baseline = run(&[], &[]);
    let traced = run(&[("SPNN_LOG", "trace")], &["--stats"]);
    assert_eq!(
        baseline.stdout, traced.stdout,
        "SPNN_LOG=trace must not change report bytes"
    );
    let stderr = String::from_utf8_lossy(&traced.stderr);
    assert!(
        stderr.contains("phase breakdown (--stats):"),
        "--stats must print the phase table: {stderr}"
    );
    assert!(
        stderr.contains("spnn_cache_hits_total"),
        "--stats must list the cache counters: {stderr}"
    );
}

/// Acceptance criterion: `spnn run --shards 3 --spawn` output is
/// `cmp`-identical to the unsharded run *and* to `spnn merge` over
/// manually-launched shards.
#[test]
fn spawn_matches_unsharded_and_manual_merge() {
    let scratch = Scratch::new("spawn");
    let spec_path = scratch.path("tiny-fig4.scn");
    std::fs::write(&spec_path, tiny_fig4().to_text()).expect("write spec");
    let cache = scratch.path("cache");
    let spec = spec_path.to_str().unwrap();
    let cache_dir = cache.to_str().unwrap();

    // --no-row-cache throughout: this test gates the shard machinery,
    // which a warm row cache would legitimately replay around.
    let full = scratch.path("full.json");
    let out = spnn(&[
        "run",
        spec,
        "--quiet",
        "--no-row-cache",
        "--format",
        "json",
        "--cache-dir",
        cache_dir,
        "--out",
        full.to_str().unwrap(),
    ]);
    assert_ok(&out, "unsharded run");

    let spawned = scratch.path("spawned.json");
    let out = spnn(&[
        "run",
        spec,
        "--quiet",
        "--no-row-cache",
        "--format",
        "json",
        "--shards",
        "3",
        "--spawn",
        "--cache-dir",
        cache_dir,
        "--out",
        spawned.to_str().unwrap(),
    ]);
    assert_ok(&out, "--spawn run");

    let mut parts = Vec::new();
    for i in 0..3 {
        let part = scratch.path(&format!("part-{i}.json"));
        let out = spnn(&[
            "run",
            spec,
            "--quiet",
            "--no-row-cache",
            "--shards",
            "3",
            "--shard-index",
            &i.to_string(),
            "--cache-dir",
            cache_dir,
            "--out",
            part.to_str().unwrap(),
        ]);
        assert_ok(&out, "manual shard");
        parts.push(part);
    }
    let merged = scratch.path("merged.json");
    let mut merge_args = vec!["merge"];
    let part_strs: Vec<&str> = parts.iter().map(|p| p.to_str().unwrap()).collect();
    merge_args.extend(part_strs);
    merge_args.extend(["--format", "json", "--out", merged.to_str().unwrap()]);
    let out = spnn(&merge_args);
    assert_ok(&out, "manual merge");

    let full_bytes = std::fs::read(&full).expect("full report");
    assert_eq!(
        full_bytes,
        std::fs::read(&spawned).expect("spawned report"),
        "--spawn output must be cmp-identical to the unsharded run"
    );
    assert_eq!(
        full_bytes,
        std::fs::read(&merged).expect("merged report"),
        "--spawn output must equal a manual shard-and-merge"
    );
}

/// `--spawn` flag validation: the launcher owns shard indices.
#[test]
fn spawn_flag_validation() {
    let scratch = Scratch::new("spawn-flags");
    let spec_path = scratch.path("tiny.scn");
    std::fs::write(&spec_path, tiny_fig4().to_text()).expect("write spec");
    let spec = spec_path.to_str().unwrap();

    let out = spnn(&["run", spec, "--spawn"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--spawn requires --shards"));

    let out = spnn(&[
        "run",
        spec,
        "--shards",
        "2",
        "--spawn",
        "--shard-index",
        "0",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("drop --shard-index"));

    let out = spnn(&["run", spec, "--shards", "2"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--shard-index (or --spawn)"));
}

// ---------------------------------------------------------------------------
// Traffic hardening: admission control, quotas, budgets, circuit breakers
// ---------------------------------------------------------------------------

use common::http_raw;

/// Tentpole acceptance (quotas): with a per-client concurrency cap of 1,
/// a client's second concurrent request is shed with `429` and a
/// `Retry-After` header while a different client's stream is untouched —
/// and the limited client's first stream still assembles byte-identical
/// to the batch report.
#[test]
fn quota_sheds_second_concurrent_request_of_one_client_only() {
    let mut spec = tiny_fig4();
    // Enough fixed work per point that the first stream is still running
    // while the second request arrives.
    spec.iterations = 64;
    spec.min_iterations = 64;
    let addr = start_server_cfg(ServeConfig {
        workers: 3,
        quota: spnn_engine::QuotaConfig {
            max_concurrent: 1,
            ..Default::default()
        },
        ..ServeConfig::default()
    });
    let text = spec.to_text();

    let (mut first, mut seen) = open_stream_until(
        addr,
        "X-Client-Id: alice\r\n",
        &text,
        "\"event\": \"started\"",
    );

    // Same client, second concurrent request: shed with 429 + Retry-After.
    let shed = http_raw(
        addr,
        &format!(
            "POST /run HTTP/1.1\r\nHost: t\r\nX-Client-Id: alice\r\nContent-Length: {}\r\n\r\n{}",
            text.len(),
            text
        ),
    );
    assert!(
        shed.starts_with("HTTP/1.1 429 "),
        "expected 429 for the quota-limited client: {shed}"
    );
    assert!(shed.contains("\r\nRetry-After: "), "{shed}");
    assert!(shed.contains("client quota exceeded"), "{shed}");

    // A different client is untouched: its stream completes normally.
    let (status, stream) = http(
        addr,
        &format!(
            "POST /run HTTP/1.1\r\nHost: t\r\nX-Client-Id: bob\r\nContent-Length: {}\r\n\r\n{}",
            text.len(),
            text
        ),
    );
    assert_eq!(status, 200, "{stream}");
    let reference = run_scenario(&spec, &EngineConfig::default()).expect("batch run");
    let assembled = spnn_engine::assemble_report(&stream).expect("assemble bob");
    assert_eq!(to_json(&assembled), to_json(&reference));

    // The shed did not corrupt alice's in-flight stream.
    first.read_to_string(&mut seen).expect("drain alice");
    let body = seen.split_once("\r\n\r\n").expect("head").1;
    let assembled = spnn_engine::assemble_report(body).expect("assemble alice");
    assert_eq!(to_json(&assembled), to_json(&reference));

    // With alice's run finished, her next request is admitted again.
    let (status, stream) = http(
        addr,
        &format!(
            "POST /run HTTP/1.1\r\nHost: t\r\nX-Client-Id: alice\r\nContent-Length: {}\r\n\r\n{}",
            text.len(),
            text
        ),
    );
    assert_eq!(status, 200, "{stream}");

    let exp = scrape(addr);
    assert!(
        exp.total("spnn_quota_shed_total") >= 1.0,
        "quota sheds must be counted"
    );
}

/// Budgets that are statically derivable from the compiled queue reject
/// the request up front with a plain 400 — no stream head, no work.
#[test]
fn budget_static_violation_is_rejected_before_any_work() {
    let addr = start_server_cfg(ServeConfig {
        workers: 1,
        budget: spnn_engine::RequestBudget {
            // tiny_fig4 compiles to 3 points at >= 2 iterations each:
            // a floor of 6, over this ceiling before anything runs.
            max_iterations: 4,
            ..Default::default()
        },
        ..ServeConfig::default()
    });
    let (status, body) = post_run(addr, &tiny_fig4().to_text());
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("budget exceeded"), "{body}");

    // Nothing ran: the rejection happened before training.
    let (_, stats) = http(addr, "GET /cache/stats HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(stats.contains("\"trains\": 0"), "{stats}");
}

/// A budget the compiled queue cannot predict (zonal plans size their
/// grids off the mapped mesh) is enforced mid-run: the stream starts,
/// then ends with a structured `error` event naming the budget.
#[test]
fn budget_midrun_violation_ends_the_stream_with_an_error_event() {
    let addr = start_server_cfg(ServeConfig {
        workers: 1,
        budget: spnn_engine::RequestBudget {
            max_points: 1,
            ..Default::default()
        },
        ..ServeConfig::default()
    });
    // Zonal: static_queue_len is None, so admission cannot pre-reject.
    let (status, stream) = post_run(addr, &tiny_fig5().to_text());
    assert_eq!(status, 200, "{stream}");
    assert!(stream.contains("\"event\": \"started\""), "{stream}");
    assert!(stream.contains("\"event\": \"error\""), "{stream}");
    assert!(stream.contains("budget exceeded"), "{stream}");
    assert!(!stream.contains("\"event\": \"done\""), "{stream}");
}

/// A stalled client (request head never finishes) is answered with `408`
/// once the configured read timeout elapses, instead of pinning a worker.
#[test]
fn stalled_request_head_gets_408_after_the_read_timeout() {
    let addr = start_server_cfg(ServeConfig {
        workers: 1,
        read_timeout: std::time::Duration::from_millis(200),
        ..ServeConfig::default()
    });
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"POST /run HTTP/1.1\r\nHost: t\r\nX-Stall:")
        .expect("send partial head");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    assert!(
        raw.starts_with("HTTP/1.1 408 "),
        "expected 408 for a stalled head: {raw}"
    );
}

/// Sums `spnn_shard_dispatch_total` across outcomes for one worker URL.
fn dispatches_to(exp: &Exposition, worker: &str) -> f64 {
    exp.samples
        .iter()
        .filter(|s| {
            s.name == "spnn_shard_dispatch_total"
                && s.labels.iter().any(|(k, v)| k == "worker" && v == worker)
        })
        .map(|s| s.value)
        .sum()
}

/// Acceptance criterion (breakers, open phase): after a dead worker
/// trips its breaker, subsequent runs dispatch **zero** attempts to it
/// while the breaker is open — asserted via `spnn_shard_dispatch_total`
/// and the breaker metrics.
#[test]
fn open_breaker_skips_the_dead_worker_entirely() {
    let live = start_server(2);
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let dead_url = format!("http://{dead}");
    let coordinator = start_server_cfg(ServeConfig {
        workers: 2,
        remote_workers: vec![dead_url.clone(), format!("http://{live}")],
        breaker: spnn_engine::BreakerConfig {
            failure_threshold: 1,
            // Long enough that this test never reaches half-open.
            cooldown: std::time::Duration::from_secs(600),
        },
        ..ServeConfig::default()
    });

    // Run 1: the dead worker's shard fails over to the live one and the
    // breaker trips at the first failure.
    let (status, stream) = post_run(coordinator, &tiny_fig4().to_text());
    assert_eq!(status, 200, "{stream}");
    assert!(stream.contains("\"event\": \"done\""), "{stream}");
    let exp = scrape(coordinator);
    let dispatched_while_closed = dispatches_to(&exp, &dead_url);
    assert!(
        dispatched_while_closed >= 1.0,
        "run 1 must have attempted the dead worker"
    );
    assert_eq!(
        exp.samples
            .iter()
            .find(|s| s.name == "spnn_worker_breaker_state"
                && s.labels
                    .iter()
                    .any(|(k, v)| k == "worker" && v == &dead_url))
            .map(|s| s.value),
        Some(1.0),
        "breaker must be open (gauge 1) after run 1"
    );
    let (_, health) = http(coordinator, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(health.contains("\"worker_breakers\": "), "{health}");
    assert!(
        health.contains(&format!("\"{dead_url}\": \"open\"")),
        "{health}"
    );

    // Run 2: zero new dispatches to the dead worker; the skip counter
    // moves instead.
    let (status, stream) = post_run(coordinator, &tiny_fig4().to_text());
    assert_eq!(status, 200, "{stream}");
    assert!(stream.contains("\"event\": \"done\""), "{stream}");
    let exp = scrape(coordinator);
    assert_eq!(
        dispatches_to(&exp, &dead_url),
        dispatched_while_closed,
        "an open breaker must shed every dispatch to its worker"
    );
    assert!(
        exp.total("spnn_shard_breaker_skips_total") >= 1.0,
        "skips must be counted"
    );
}

/// Acceptance criterion (breakers, revival): once the worker is back, a
/// background half-open `/healthz` probe closes the breaker without any
/// request traffic, and later runs dispatch to the revived worker again.
#[test]
fn half_open_probe_revives_a_recovered_worker() {
    let live = start_server(2);
    // Reserve a port for the "crashed" worker, then free it so the
    // coordinator sees connection-refused until the revival below.
    let reserved = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let reserved_url = format!("http://{reserved}");
    let coordinator = start_server_cfg(ServeConfig {
        workers: 2,
        remote_workers: vec![reserved_url.clone(), format!("http://{live}")],
        breaker: spnn_engine::BreakerConfig {
            failure_threshold: 1,
            cooldown: std::time::Duration::from_millis(300),
        },
        ..ServeConfig::default()
    });

    // Trip the breaker while the reserved port is dead.
    let (status, stream) = post_run(coordinator, &tiny_fig4().to_text());
    assert_eq!(status, 200, "{stream}");
    assert!(stream.contains("\"event\": \"done\""), "{stream}");

    // Revive the worker on the reserved port; the prober's next
    // half-open /healthz probe should close the breaker on its own.
    let server = Server::bind(
        reserved,
        ServeConfig {
            workers: 2,
            engine: EngineConfig {
                threads: Some(2),
                verbose: false,
                cache_dir: None,
                ..EngineConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .expect("rebind reserved port");
    std::thread::spawn(move || server.run());

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    loop {
        let (_, health) = http(coordinator, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        if health.contains(&format!("\"{reserved_url}\": \"closed\"")) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "breaker never closed after revival: {health}"
        );
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    let probes = scrape(coordinator).total("spnn_breaker_probes_total");
    assert!(probes >= 1.0, "revival must come from a health probe");

    // The revived worker takes dispatches again — and the stream is
    // still byte-identical to the batch report.
    let before = dispatches_to(&scrape(coordinator), &reserved_url);
    let spec = tiny_fig4();
    let (status, stream) = post_run(coordinator, &spec.to_text());
    assert_eq!(status, 200, "{stream}");
    let reference = run_scenario(&spec, &EngineConfig::default()).expect("batch run");
    let assembled = spnn_engine::assemble_report(&stream).expect("assemble");
    assert_eq!(to_json(&assembled), to_json(&reference));
    assert!(
        dispatches_to(&scrape(coordinator), &reserved_url) > before,
        "the revived worker must receive dispatches again"
    );
}
