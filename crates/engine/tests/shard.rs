//! Shard-and-merge integration tests: the acceptance guarantee is that a
//! `k`-way sharded run, serialized through the JSON partial-report format
//! and recombined with `merge_partials`, is **byte-for-byte identical**
//! (CSV and JSON) to the unsharded run — for fig4, fig5, and adaptive
//! early-termination scenarios — and that the merge rejects gapped,
//! overlapping, and foreign partial sets.

use proptest::prelude::*;
use spnn_engine::cache::ContextCache;
use spnn_engine::prelude::*;
use spnn_engine::shard::{
    plan_shard, plan_shard_weighted, weighted_span, MergeError, MergeState, PartialReport,
};
use spnn_engine::spec::PlanKind;
use spnn_photonics::PerturbTarget;

fn tiny_fig4() -> ScenarioSpec {
    let mut spec = presets::fig4(&RunScale::tiny());
    spec.sweep.modes = vec![PerturbTarget::Both, PerturbTarget::PhaseShiftersOnly];
    spec.sweep.sigmas = vec![0.0, 0.05, 0.1];
    spec.iterations = 10;
    spec.min_iterations = 2;
    spec.round_size = 4; // 3 rounds/point, last one short
    spec
}

fn tiny_fig5() -> ScenarioSpec {
    let mut spec = presets::fig5(&RunScale::tiny());
    assert_eq!(spec.plan, PlanKind::Zonal);
    spec.iterations = 6;
    spec.min_iterations = 2;
    spec.round_size = 4;
    spec.zonal.layers = spnn_engine::spec::LayerSelect::List(vec![0]);
    spec.zonal.stages = vec![spnn_core::Stage::UMesh];
    spec
}

/// Runs every shard of a `k`-way plan (sharing one in-memory trained
/// context, as a warm cache would across processes), round-trips each
/// partial through its JSON form, and merges.
fn shard_and_merge(spec: &ScenarioSpec, k: usize) -> EngineReport {
    let config = EngineConfig::default();
    let cache = ContextCache::in_memory();
    let partials: Vec<PartialReport> = (0..k)
        .map(|i| {
            let p = run_scenario_shard_with(spec, &config, &cache, k, i).expect("shard runs");
            assert_eq!(p.shards, k);
            assert_eq!(p.shard_index, i);
            // The on-disk JSON round trip must be transparent.
            PartialReport::parse(&p.to_json()).expect("partial round-trips")
        })
        .collect();
    merge_partials(&partials).expect("partials merge")
}

fn assert_byte_identical(spec: &ScenarioSpec, k: usize) {
    let unsharded = run_scenario(spec, &EngineConfig::default()).expect("unsharded run");
    let merged = shard_and_merge(spec, k);
    assert_eq!(
        to_json(&merged),
        to_json(&unsharded),
        "{}: JSON diverged at k={k}",
        spec.name
    );
    assert_eq!(
        to_csv(&merged),
        to_csv(&unsharded),
        "{}: CSV diverged at k={k}",
        spec.name
    );
}

/// Acceptance criterion: merged k-shard fig4 reports are byte-for-byte
/// identical to the unsharded report (also enforced at scale by the CI
/// `shard-merge` job).
#[test]
fn fig4_sharded_merge_is_byte_identical() {
    let spec = tiny_fig4();
    for k in [1, 2, 3, 5] {
        assert_byte_identical(&spec, k);
    }
}

/// Acceptance criterion: same for the zonal fig5 queue.
#[test]
fn fig5_sharded_merge_is_byte_identical() {
    let spec = tiny_fig5();
    for k in [1, 3] {
        assert_byte_identical(&spec, k);
    }
}

/// The reworked adaptive logic: only the prefix-owning shard may stop
/// early, later shards speculate, and the merge replays the stop rule —
/// the recombined report still matches the unsharded adaptive run
/// bit-for-bit.
#[test]
fn adaptive_sharded_merge_is_byte_identical() {
    let mut spec = tiny_fig4();
    spec.iterations = 24;
    spec.min_iterations = 4;
    spec.round_size = 4;
    spec.target_moe = 0.05;
    let unsharded = run_scenario(&spec, &EngineConfig::default()).expect("unsharded run");
    assert!(
        unsharded.rows.iter().any(|r| r.stopped_early),
        "fixture must exercise early termination (σ = 0 rows stop at the first boundary)"
    );
    for k in [2, 3, 7] {
        let merged = shard_and_merge(&spec, k);
        assert_eq!(
            to_json(&merged),
            to_json(&unsharded),
            "adaptive run diverged at k={k}"
        );
    }
}

/// Satellite acceptance: feeding partials through [`MergeState`] in
/// **every permutation** of arrival order yields (a) a finalized report
/// byte-identical to batch `merge_partials` and to the unsharded run,
/// and (b) rows emitted exactly once, in strict prefix order, equal to
/// the final report's rows — for fig4, zonal fig5, and an adaptive
/// early-stopping scenario whose merge must discard speculation.
#[test]
fn merge_state_permutations_are_byte_identical_and_stream_in_prefix_order() {
    let mut adaptive = tiny_fig4();
    adaptive.iterations = 24;
    adaptive.min_iterations = 4;
    adaptive.target_moe = 0.05;
    const PERMUTATIONS: [[usize; 3]; 6] = [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ];
    for spec in [tiny_fig4(), tiny_fig5(), adaptive] {
        let config = EngineConfig::default();
        let cache = ContextCache::in_memory();
        let partials: Vec<PartialReport> = (0..3)
            .map(|i| run_scenario_shard_with(&spec, &config, &cache, 3, i).unwrap())
            .collect();
        let unsharded = run_scenario(&spec, &config).expect("unsharded run");
        let batch = merge_partials(&partials).expect("batch merge");
        assert_eq!(to_json(&batch), to_json(&unsharded), "{}", spec.name);

        for perm in PERMUTATIONS {
            let mut state = MergeState::new();
            let mut streamed = Vec::new();
            for &i in &perm {
                streamed.extend(state.push(partials[i].clone()).expect("push partial"));
            }
            assert!(state.is_complete(), "{}: {perm:?}", spec.name);
            let report = state.finalize().expect("finalize");
            assert_eq!(
                to_json(&report),
                to_json(&unsharded),
                "{}: JSON diverged for arrival order {perm:?}",
                spec.name
            );
            assert_eq!(
                to_csv(&report),
                to_csv(&unsharded),
                "{}: CSV diverged for arrival order {perm:?}",
                spec.name
            );
            assert_eq!(streamed.len(), report.rows.len(), "{perm:?}");
            for (expected_index, (index, row)) in streamed.iter().enumerate() {
                assert_eq!(*index, expected_index, "rows must stream in prefix order");
                assert_eq!(row, &report.rows[*index], "streamed row != final row");
            }
        }
    }
}

/// Partials need not come from a single plan: any set whose blocks cover
/// the queue exactly merges. Half of a 2-way plan plus the matching two
/// quarters of a 4-way plan is an exact cover.
#[test]
fn merge_accepts_partials_from_different_plans() {
    let spec = tiny_fig4();
    let config = EngineConfig::default();
    let cache = ContextCache::in_memory();
    let half = run_scenario_shard_with(&spec, &config, &cache, 2, 0).unwrap();
    let q2 = run_scenario_shard_with(&spec, &config, &cache, 4, 2).unwrap();
    let q3 = run_scenario_shard_with(&spec, &config, &cache, 4, 3).unwrap();
    let merged = merge_partials(&[half, q2, q3]).expect("mixed plans cover exactly");
    let unsharded = run_scenario(&spec, &config).unwrap();
    assert_eq!(to_json(&merged), to_json(&unsharded));
}

#[test]
fn merge_rejects_a_dropped_shard() {
    let spec = tiny_fig4();
    let config = EngineConfig::default();
    let cache = ContextCache::in_memory();
    let partials: Vec<PartialReport> = (0..3)
        .map(|i| run_scenario_shard_with(&spec, &config, &cache, 3, i).unwrap())
        .collect();
    let err = merge_partials(&partials[..2]).expect_err("gapped set must not merge");
    assert!(matches!(err, MergeError::Coverage(_)), "{err}");
}

/// Speculative redundancy (the work-stealing contract): the same shard
/// arriving twice is bit-identical by construction — iteration `k` is a
/// pure function of `(seed, k)` — so the merge absorbs the duplicate
/// instead of rejecting it, and the recombined bytes do not change.
#[test]
fn merge_deduplicates_a_duplicated_shard() {
    let spec = tiny_fig4();
    let config = EngineConfig::default();
    let cache = ContextCache::in_memory();
    let mut partials: Vec<PartialReport> = (0..2)
        .map(|i| run_scenario_shard_with(&spec, &config, &cache, 2, i).unwrap())
        .collect();
    partials.push(partials[1].clone());
    let merged = merge_partials(&partials).expect("bit-identical duplicates must be absorbed");
    let unsharded = run_scenario(&spec, &config).expect("unsharded run");
    assert_eq!(to_json(&merged), to_json(&unsharded));
    assert_eq!(to_csv(&merged), to_csv(&unsharded));
}

/// Overlap at sub-shard granularity: a whole-queue partial plus a
/// re-dispatched sub-slice of it (different block boundaries, same bits)
/// also merges byte-identical — the exact shape work stealing produces
/// when a victim answers after its slice was stolen.
#[test]
fn merge_deduplicates_partial_overlap_from_redispatch() {
    let spec = tiny_fig4();
    let config = EngineConfig::default();
    let cache = ContextCache::in_memory();
    let whole = run_scenario_shard_with(&spec, &config, &cache, 1, 0).unwrap();
    let slice = run_scenario_shard_with(&spec, &config, &cache, 3, 1).unwrap();
    let merged = merge_partials(&[slice, whole]).expect("overlapping cover must merge");
    let unsharded = run_scenario(&spec, &config).expect("unsharded run");
    assert_eq!(to_json(&merged), to_json(&unsharded));
}

#[test]
fn merge_rejects_partials_of_a_different_spec() {
    let spec = tiny_fig4();
    let mut foreign_spec = tiny_fig4();
    foreign_spec.seed ^= 0xDEAD;
    let config = EngineConfig::default();
    let cache = ContextCache::in_memory();
    let a = run_scenario_shard_with(&spec, &config, &cache, 2, 0).unwrap();
    let b = run_scenario_shard_with(&foreign_spec, &config, &cache, 2, 1).unwrap();
    let err = merge_partials(&[a, b]).expect_err("foreign fingerprint must not merge");
    assert!(matches!(err, MergeError::Mismatch(_)), "{err}");
}

#[test]
fn shard_driver_validates_its_arguments() {
    let spec = tiny_fig4();
    let config = EngineConfig::default();
    let cache = ContextCache::in_memory();
    assert!(run_scenario_shard_with(&spec, &config, &cache, 0, 0).is_err());
    assert!(run_scenario_shard_with(&spec, &config, &cache, 3, 3).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    /// Property: for any queue shape and shard count, the k slices of the
    /// plan are disjoint, in-bounds, and cover every round exactly once.
    #[test]
    fn planner_partitions_any_queue_exactly_once(
        rounds_per_point in collection::vec(1usize..9, 1..40),
        k in 1usize..12,
    ) {
        let total: usize = rounds_per_point.iter().sum();
        let mut covered = vec![0u32; total];
        for i in 0..k {
            for b in plan_shard(&rounds_per_point, k, i) {
                prop_assert!(b.point < rounds_per_point.len());
                prop_assert!(b.rounds > 0);
                prop_assert!(b.first_round + b.rounds <= rounds_per_point[b.point]);
                let base: usize = rounds_per_point[..b.point].iter().sum();
                for r in 0..b.rounds {
                    covered[base + b.first_round + r] += 1;
                }
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1), "coverage counts: {covered:?}");
    }

    /// Property: slice sizes differ by at most one round (balanced plans),
    /// and every shard's blocks are sorted and non-adjacent-overlapping.
    #[test]
    fn planner_slices_are_balanced_and_ordered(
        rounds_per_point in collection::vec(1usize..9, 1..40),
        k in 1usize..12,
    ) {
        let mut sizes = Vec::new();
        for i in 0..k {
            let blocks = plan_shard(&rounds_per_point, k, i);
            sizes.push(blocks.iter().map(|b| b.rounds).sum::<usize>());
            for pair in blocks.windows(2) {
                prop_assert!(pair[0].point < pair[1].point, "blocks out of order");
            }
        }
        let lo = sizes.iter().min().copied().unwrap_or(0);
        let hi = sizes.iter().max().copied().unwrap_or(0);
        prop_assert!(hi - lo <= 1, "unbalanced sizes: {sizes:?}");
    }

    /// Property: for any weight vector — zeros, huge skews, more peers
    /// than rounds — the weighted spans are contiguous, in-bounds, and
    /// the blocks they expand to cover the round space exactly once.
    #[test]
    fn weighted_planner_partitions_any_queue_exactly_once(
        rounds_per_point in collection::vec(1usize..9, 1..40),
        weights in collection::vec(0u64..u64::MAX, 1..12),
    ) {
        let total: usize = rounds_per_point.iter().sum();
        let mut covered = vec![0u32; total];
        let mut prev_hi = 0usize;
        for i in 0..weights.len() {
            let (lo, hi) = weighted_span(&rounds_per_point, &weights, i);
            prop_assert_eq!(lo, prev_hi, "spans must tile contiguously");
            prop_assert!(hi <= total, "span end out of bounds");
            prev_hi = hi;
            for b in plan_shard_weighted(&rounds_per_point, &weights, i) {
                prop_assert!(b.point < rounds_per_point.len());
                prop_assert!(b.rounds > 0);
                prop_assert!(b.first_round + b.rounds <= rounds_per_point[b.point]);
                let base: usize = rounds_per_point[..b.point].iter().sum();
                for r in 0..b.rounds {
                    covered[base + b.first_round + r] += 1;
                }
            }
        }
        prop_assert_eq!(prev_hi, total, "spans must end at the total");
        prop_assert!(covered.iter().all(|&c| c == 1), "coverage counts: {covered:?}");
    }

    /// Property: uniform weights degenerate **bit-exactly** to today's
    /// equal plan, for any uniform magnitude — the shared factor cancels
    /// inside the floor, so a weighted fleet of identical boxes plans
    /// the same bytes the unweighted one always did.
    #[test]
    fn weighted_planner_degenerates_to_the_equal_plan_at_uniform_weights(
        rounds_per_point in collection::vec(1usize..9, 1..40),
        k in 1usize..12,
        w in 1u64..(1u64 << 40),
    ) {
        let weights = vec![w; k];
        for i in 0..k {
            prop_assert_eq!(
                plan_shard_weighted(&rounds_per_point, &weights, i),
                plan_shard(&rounds_per_point, k, i),
                "uniform weight {w} diverged from the equal plan at slice {i}/{k}"
            );
        }
    }

    /// Property: a zero-weight peer gets an empty span (it is starved of
    /// work, never handed a sliver), and the surviving weight mass still
    /// tiles the whole round space.
    #[test]
    fn weighted_planner_starves_zero_weight_peers(
        rounds_per_point in collection::vec(1usize..9, 1..40),
        nonzero in collection::vec(1u64..1_000_000, 1..6),
        zero_at in 0usize..6,
    ) {
        let mut weights: Vec<u64> = nonzero;
        let at = zero_at % (weights.len() + 1);
        weights.insert(at, 0);
        let (lo, hi) = weighted_span(&rounds_per_point, &weights, at);
        prop_assert_eq!(lo, hi, "zero-weight peer must get an empty span");
        let total: usize = rounds_per_point.iter().sum();
        let spans: Vec<(usize, usize)> = (0..weights.len())
            .map(|i| weighted_span(&rounds_per_point, &weights, i))
            .collect();
        prop_assert_eq!(spans[0].0, 0);
        prop_assert_eq!(spans[weights.len() - 1].1, total);
    }
}
