//! Random sampling utilities: Gaussian scalars (Box–Muller) and
//! Haar-distributed random unitary matrices.
//!
//! The paper's layer-level experiment (Fig. 3) draws "randomly generated 5×5
//! unitary matrices"; the standard construction is QR of a complex Ginibre
//! matrix with the phase correction of Mezzadri (2007), which yields the Haar
//! (uniform) measure on U(N).
//!
//! Gaussian sampling is implemented directly over `rand`'s uniform floats so
//! the workspace does not need `rand_distr`.

use crate::c64::C64;
use crate::matrix::CMatrix;
use crate::qr::qr;
use rand::Rng;

/// Draws a standard normal `N(0, 1)` sample using the Box–Muller transform.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = spnn_linalg::random::gaussian(&mut rng);
/// assert!(x.is_finite());
/// ```
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u ∈ (0, 1]: avoid ln(0).
    let u: f64 = 1.0 - rng.gen::<f64>();
    let v: f64 = rng.gen::<f64>();
    (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos()
}

/// Draws `N(mu, sigma²)`.
pub fn gaussian_with<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    mu + sigma * gaussian(rng)
}

/// Draws a standard complex Gaussian (independent `N(0,1)` real and
/// imaginary parts) — one entry of a Ginibre matrix.
pub fn gaussian_complex<R: Rng + ?Sized>(rng: &mut R) -> C64 {
    // One Box–Muller pair gives two independent normals; use both.
    let u: f64 = 1.0 - rng.gen::<f64>();
    let v: f64 = rng.gen::<f64>();
    let r = (-2.0 * u.ln()).sqrt();
    let t = std::f64::consts::TAU * v;
    C64::new(r * t.cos(), r * t.sin())
}

/// Draws an `n × n` complex Ginibre matrix (i.i.d. standard complex Gaussian
/// entries).
pub fn ginibre<R: Rng + ?Sized>(n: usize, rng: &mut R) -> CMatrix {
    CMatrix::from_fn(n, n, |_, _| gaussian_complex(rng))
}

/// Draws a Haar-distributed random unitary matrix from U(n).
///
/// Construction: `A` Ginibre, `A = QR`, then `U = Q·Λ` with
/// `Λ = diag(rᵢᵢ/|rᵢᵢ|)`. The phase correction removes the sign ambiguity of
/// QR and makes the distribution exactly Haar (Mezzadri, *Notices AMS* 2007).
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
/// let u = spnn_linalg::random::haar_unitary(5, &mut rng);
/// assert!(u.is_unitary(1e-10));
/// ```
pub fn haar_unitary<R: Rng + ?Sized>(n: usize, rng: &mut R) -> CMatrix {
    assert!(n > 0, "unitary dimension must be positive");
    let a = ginibre(n, rng);
    let f = qr(&a).expect("qr of non-empty matrix cannot fail");
    let mut u = f.q;
    for j in 0..n {
        let d = f.r[(j, j)];
        let lambda = if d.abs() > 0.0 {
            d.unit_or_zero()
        } else {
            C64::one()
        };
        for i in 0..n {
            u[(i, j)] *= lambda;
        }
    }
    u
}

/// Draws a random vector with i.i.d. standard complex Gaussian entries.
pub fn gaussian_vector<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<C64> {
    (0..n).map(|_| gaussian_complex(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.03, "variance {var} too far from 1");
    }

    #[test]
    fn gaussian_with_shifts_and_scales() {
        let mut rng = StdRng::seed_from_u64(12);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian_with(&mut rng, 3.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02);
        assert!((var - 0.25).abs() < 0.02);
    }

    #[test]
    fn complex_gaussian_is_isotropic() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 100_000;
        let (mut sre, mut sim, mut cross) = (0.0, 0.0, 0.0);
        for _ in 0..n {
            let z = gaussian_complex(&mut rng);
            sre += z.re * z.re;
            sim += z.im * z.im;
            cross += z.re * z.im;
        }
        assert!((sre / n as f64 - 1.0).abs() < 0.05);
        assert!((sim / n as f64 - 1.0).abs() < 0.05);
        assert!((cross / n as f64).abs() < 0.05);
    }

    #[test]
    fn haar_unitary_is_unitary_many_sizes() {
        let mut rng = StdRng::seed_from_u64(14);
        for n in [1, 2, 3, 5, 8, 16] {
            let u = haar_unitary(n, &mut rng);
            assert!(u.is_unitary(1e-10), "U({n}) sample not unitary");
        }
    }

    #[test]
    fn haar_unitary_deterministic_per_seed() {
        let u1 = haar_unitary(4, &mut StdRng::seed_from_u64(99));
        let u2 = haar_unitary(4, &mut StdRng::seed_from_u64(99));
        assert!(u1.approx_eq(&u2, 0.0));
        let u3 = haar_unitary(4, &mut StdRng::seed_from_u64(100));
        assert!(!u1.approx_eq(&u3, 1e-3));
    }

    #[test]
    fn haar_first_entry_phase_is_uniformish() {
        // The argument of U[0][0] should be roughly uniform over (−π, π]:
        // check that all four quadrants are populated.
        let mut rng = StdRng::seed_from_u64(15);
        let mut quadrants = [0usize; 4];
        for _ in 0..400 {
            let u = haar_unitary(3, &mut rng);
            let a = u[(0, 0)].arg();
            let q = if a >= 0.0 {
                if a < std::f64::consts::FRAC_PI_2 {
                    0
                } else {
                    1
                }
            } else if a >= -std::f64::consts::FRAC_PI_2 {
                3
            } else {
                2
            };
            quadrants[q] += 1;
        }
        assert!(quadrants.iter().all(|&c| c > 40), "quadrants {quadrants:?}");
    }

    #[test]
    fn gaussian_vector_has_requested_length() {
        let mut rng = StdRng::seed_from_u64(16);
        assert_eq!(gaussian_vector(10, &mut rng).len(), 10);
    }
}
