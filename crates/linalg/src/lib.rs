//! From-scratch complex linear algebra for silicon-photonic neural-network
//! simulation.
//!
//! This crate provides every numerical primitive used by the SPNN
//! reproduction of *"Modeling Silicon-Photonic Neural Networks under
//! Uncertainties"* (DATE 2021):
//!
//! - [`C64`]: a double-precision complex scalar with the full arithmetic and
//!   transcendental surface needed for photonic transfer matrices.
//! - [`CMatrix`]: a dense, row-major complex matrix with multiplication,
//!   adjoints, norms and slicing.
//! - [`qr`]: Householder QR factorization of complex matrices.
//! - [`svd`]: complex singular value decomposition via one-sided Jacobi
//!   rotations — used to split every neural weight matrix into
//!   `U · Σ · Vᴴ` before mapping onto MZI meshes.
//! - [`fft`]: radix-2 and Bluestein FFTs, 2-D transforms and `fftshift` —
//!   used by the MNIST-style feature pipeline (shifted 2-D FFT).
//! - [`random`]: Haar-distributed random unitaries and Gaussian sampling
//!   (Box–Muller) on top of [`rand`] uniforms.
//!
//! # Example
//!
//! ```
//! use spnn_linalg::{C64, CMatrix};
//! use spnn_linalg::random::haar_unitary;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let u = haar_unitary(4, &mut rng);
//! let id = u.mul(&u.adjoint());
//! assert!(id.is_identity(1e-10));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod c64;
pub mod fft;
pub mod matrix;
pub mod qr;
pub mod random;
pub mod svd;
pub mod vector;

pub use c64::C64;
pub use matrix::CMatrix;
pub use svd::Svd;

use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra kernels in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible shapes. Holds `(rows_a, cols_a, rows_b, cols_b)`.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: (usize, usize),
        /// Shape of the right-hand operand.
        right: (usize, usize),
    },
    /// An operation that requires a square matrix received a rectangular one.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// An iterative algorithm failed to converge within its sweep budget.
    NotConverged {
        /// Name of the algorithm that failed (e.g. `"jacobi-svd"`).
        algorithm: &'static str,
        /// Number of sweeps/iterations performed before giving up.
        iterations: usize,
    },
    /// A matrix dimension was zero where a non-empty matrix is required.
    Empty,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { left, right } => write!(
                f,
                "shape mismatch: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::NotConverged {
                algorithm,
                iterations,
            } => write!(f, "{algorithm} did not converge after {iterations} sweeps"),
            LinalgError::Empty => write!(f, "matrix must be non-empty"),
        }
    }
}

impl Error for LinalgError {}

/// Convenience result alias for fallible linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
