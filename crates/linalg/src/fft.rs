//! Fast Fourier transforms: radix-2 Cooley–Tukey, Bluestein for arbitrary
//! lengths, 2-D transforms and `fftshift`.
//!
//! The paper converts each 28×28 MNIST image to a complex feature vector via
//! the *shifted* 2-D FFT and keeps the central 4×4 of the spectrum. 28 is not
//! a power of two, so an arbitrary-length transform (Bluestein's chirp-z
//! algorithm) is required on top of the radix-2 kernel.

use crate::c64::C64;
use crate::matrix::CMatrix;

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Forward DFT: `X_k = Σ x_n e^{−2πi·kn/N}`.
    Forward,
    /// Inverse DFT (including the `1/N` normalization).
    Inverse,
}

/// In-place radix-2 Cooley–Tukey FFT.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two. Use [`fft`] for arbitrary
/// lengths.
pub fn fft_pow2_inplace(data: &mut [C64], dir: Direction) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "fft_pow2_inplace requires power-of-two length"
    );
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }

    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };

    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = C64::cis(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = C64::one();
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }

    if dir == Direction::Inverse {
        let inv = 1.0 / n as f64;
        for z in data.iter_mut() {
            *z = z.scale(inv);
        }
    }
}

/// FFT of arbitrary length: radix-2 when possible, Bluestein otherwise.
///
/// Returns a new vector; the input is unchanged.
///
/// # Example
///
/// ```
/// use spnn_linalg::{C64, fft::{fft, Direction}};
/// let x: Vec<C64> = (0..6).map(|i| C64::new(i as f64, 0.0)).collect();
/// let spectrum = fft(&x, Direction::Forward);
/// let back = fft(&spectrum, Direction::Inverse);
/// for (a, b) in x.iter().zip(back.iter()) {
///     assert!(a.approx_eq(*b, 1e-10));
/// }
/// ```
pub fn fft(input: &[C64], dir: Direction) -> Vec<C64> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut data = input.to_vec();
        fft_pow2_inplace(&mut data, dir);
        return data;
    }
    bluestein(input, dir)
}

/// Bluestein's chirp-z transform: expresses an arbitrary-length DFT as a
/// convolution, evaluated with power-of-two FFTs.
fn bluestein(input: &[C64], dir: Direction) -> Vec<C64> {
    let n = input.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };

    // Chirp: w_k = e^{sign·πi·k²/n}. Use k² mod 2n to avoid huge angles.
    let mut chirp = Vec::with_capacity(n);
    for k in 0..n {
        let k2 = (k as u64 * k as u64) % (2 * n as u64);
        chirp.push(C64::cis(sign * std::f64::consts::PI * k2 as f64 / n as f64));
    }

    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![C64::zero(); m];
    for k in 0..n {
        a[k] = input[k] * chirp[k];
    }
    let mut b = vec![C64::zero(); m];
    b[0] = chirp[0].conj();
    for k in 1..n {
        let c = chirp[k].conj();
        b[k] = c;
        b[m - k] = c;
    }

    fft_pow2_inplace(&mut a, Direction::Forward);
    fft_pow2_inplace(&mut b, Direction::Forward);
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x *= *y;
    }
    fft_pow2_inplace(&mut a, Direction::Inverse);

    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        out.push(a[k] * chirp[k]);
    }
    if dir == Direction::Inverse {
        let inv = 1.0 / n as f64;
        for z in &mut out {
            *z = z.scale(inv);
        }
    }
    out
}

/// Reference `O(n²)` DFT — used to pin the fast transforms in tests.
pub fn dft_naive(input: &[C64], dir: Direction) -> Vec<C64> {
    let n = input.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut out = vec![C64::zero(); n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = C64::zero();
        for (j, &x) in input.iter().enumerate() {
            let ang = sign * std::f64::consts::TAU * (k as f64) * (j as f64) / n as f64;
            acc += x * C64::cis(ang);
        }
        *o = if dir == Direction::Inverse {
            acc.scale(1.0 / n as f64)
        } else {
            acc
        };
    }
    out
}

/// 2-D FFT of a complex matrix (rows first, then columns).
pub fn fft2(input: &CMatrix, dir: Direction) -> CMatrix {
    let (rows, cols) = input.shape();
    let mut out = input.clone();
    // Transform rows.
    for r in 0..rows {
        let row: Vec<C64> = out.row(r).to_vec();
        let t = fft(&row, dir);
        for (c, z) in t.into_iter().enumerate() {
            out[(r, c)] = z;
        }
    }
    // Transform columns.
    for c in 0..cols {
        let col: Vec<C64> = out.col(c);
        let t = fft(&col, dir);
        for (r, z) in t.into_iter().enumerate() {
            out[(r, c)] = z;
        }
    }
    out
}

/// Swaps quadrants so the zero-frequency component moves to the center —
/// `fftshift`, matching the "shifted fast Fourier transform" of the paper.
///
/// For odd dimensions the extra element goes to the leading half, matching
/// NumPy's convention (`shift = n / 2` rounded down applied as a rotation).
pub fn fftshift(input: &CMatrix) -> CMatrix {
    let (rows, cols) = input.shape();
    let (sr, sc) = (rows / 2, cols / 2);
    CMatrix::from_fn(rows, cols, |r, c| {
        input[((r + rows - sr) % rows, (c + cols - sc) % cols)]
    })
}

/// Inverse of [`fftshift`].
pub fn ifftshift(input: &CMatrix) -> CMatrix {
    let (rows, cols) = input.shape();
    let (sr, sc) = (rows - rows / 2, cols - cols / 2);
    CMatrix::from_fn(rows, cols, |r, c| {
        input[((r + rows - sr) % rows, (c + cols - sc) % cols)]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::gaussian_complex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_signal(n: usize, seed: u64) -> Vec<C64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| gaussian_complex(&mut rng)).collect()
    }

    fn assert_close(a: &[C64], b: &[C64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(x.approx_eq(*y, tol), "{x} != {y}");
        }
    }

    #[test]
    fn fft_pow2_matches_naive() {
        for n in [1usize, 2, 4, 8, 16, 64] {
            let x = random_signal(n, n as u64);
            let fast = fft(&x, Direction::Forward);
            let slow = dft_naive(&x, Direction::Forward);
            assert_close(&fast, &slow, 1e-9 * (n as f64));
        }
    }

    #[test]
    fn bluestein_matches_naive() {
        for n in [3usize, 5, 6, 7, 12, 28, 100] {
            let x = random_signal(n, 1000 + n as u64);
            let fast = fft(&x, Direction::Forward);
            let slow = dft_naive(&x, Direction::Forward);
            assert_close(&fast, &slow, 1e-8 * (n as f64));
        }
    }

    #[test]
    fn inverse_roundtrip() {
        for n in [4usize, 7, 28, 32] {
            let x = random_signal(n, 2000 + n as u64);
            let back = fft(&fft(&x, Direction::Forward), Direction::Inverse);
            assert_close(&x, &back, 1e-9 * (n as f64).max(1.0));
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![C64::zero(); 8];
        x[0] = C64::one();
        let y = fft(&x, Direction::Forward);
        for z in y {
            assert!(z.approx_eq(C64::one(), 1e-12));
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let x = vec![C64::one(); 16];
        let y = fft(&x, Direction::Forward);
        assert!(y[0].approx_eq(C64::from(16.0), 1e-10));
        for z in &y[1..] {
            assert!(z.abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 28;
        let x = random_signal(n, 77);
        let y = fft(&x, Direction::Forward);
        let ex: f64 = x.iter().map(|z| z.abs_sq()).sum();
        let ey: f64 = y.iter().map(|z| z.abs_sq()).sum::<f64>() / n as f64;
        assert!((ex - ey).abs() < 1e-9 * ex.max(1.0));
    }

    #[test]
    fn fft2_matches_naive_28() {
        let mut rng = StdRng::seed_from_u64(5);
        let img = CMatrix::from_fn(28, 28, |_, _| gaussian_complex(&mut rng));
        let fast = fft2(&img, Direction::Forward);
        // Naive 2-D: DFT each row, then each column.
        let mut slow = img.clone();
        for r in 0..28 {
            let t = dft_naive(slow.row(r), Direction::Forward);
            for (c, z) in t.into_iter().enumerate() {
                slow[(r, c)] = z;
            }
        }
        for c in 0..28 {
            let t = dft_naive(&slow.col(c), Direction::Forward);
            for (r, z) in t.into_iter().enumerate() {
                slow[(r, c)] = z;
            }
        }
        assert!(fast.approx_eq(&slow, 1e-6), "2-D FFT mismatch");
    }

    #[test]
    fn fft2_roundtrip() {
        let mut rng = StdRng::seed_from_u64(6);
        let img = CMatrix::from_fn(12, 28, |_, _| gaussian_complex(&mut rng));
        let back = fft2(&fft2(&img, Direction::Forward), Direction::Inverse);
        assert!(back.approx_eq(&img, 1e-9));
    }

    #[test]
    fn fftshift_moves_dc_to_center() {
        // DC (0,0) should land at (rows/2, cols/2).
        let mut m = CMatrix::zeros(4, 6);
        m[(0, 0)] = C64::one();
        let s = fftshift(&m);
        assert!(s[(2, 3)].approx_eq(C64::one(), 0.0));
        assert!(s[(0, 0)].approx_eq(C64::zero(), 0.0));
    }

    #[test]
    fn fftshift_roundtrip_even_and_odd() {
        for (r, c) in [(4, 4), (5, 5), (4, 7), (28, 28)] {
            let mut rng = StdRng::seed_from_u64((r * 100 + c) as u64);
            let m = CMatrix::from_fn(r, c, |_, _| gaussian_complex(&mut rng));
            assert!(ifftshift(&fftshift(&m)).approx_eq(&m, 0.0), "{r}x{c}");
        }
    }

    #[test]
    fn empty_fft_is_empty() {
        assert!(fft(&[], Direction::Forward).is_empty());
    }

    #[test]
    fn fft_linearity() {
        let n = 28;
        let x = random_signal(n, 8);
        let y = random_signal(n, 9);
        let sum: Vec<C64> = x.iter().zip(y.iter()).map(|(a, b)| *a + *b).collect();
        let fx = fft(&x, Direction::Forward);
        let fy = fft(&y, Direction::Forward);
        let fsum = fft(&sum, Direction::Forward);
        for i in 0..n {
            assert!(fsum[i].approx_eq(fx[i] + fy[i], 1e-8));
        }
    }
}
