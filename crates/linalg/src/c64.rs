//! Double-precision complex scalar.
//!
//! [`C64`] is a `#[repr(C)]` pair of `f64`s with the arithmetic,
//! transcendental and polar operations needed by photonic transfer-matrix
//! algebra. It is deliberately small and `Copy`; all methods are `#[inline]`
//! so matrix kernels optimize well.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Example
///
/// ```
/// use spnn_linalg::C64;
///
/// let z = C64::from_polar(1.0, std::f64::consts::FRAC_PI_2);
/// assert!((z.re).abs() < 1e-15);
/// assert!((z.im - 1.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The additive identity, `0 + 0i`.
pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
/// The multiplicative identity, `1 + 0i`.
pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
/// The imaginary unit, `0 + 1i`.
pub const I: C64 = C64 { re: 0.0, im: 1.0 };

impl C64 {
    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The additive identity, `0 + 0i`.
    #[inline]
    pub const fn zero() -> Self {
        ZERO
    }

    /// The multiplicative identity, `1 + 0i`.
    #[inline]
    pub const fn one() -> Self {
        ONE
    }

    /// The imaginary unit, `0 + 1i`.
    #[inline]
    pub const fn i() -> Self {
        I
    }

    /// Builds a complex number from polar coordinates `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{iθ}` — a unit-modulus phasor. The workhorse of phase-shifter models.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate `re − i·im`.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Modulus `|z| = √(re² + im²)`, computed with `hypot` for robustness.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|²` — the optical *intensity* of a field amplitude.
    #[inline]
    pub fn abs_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Principal argument in `(−π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// `(modulus, argument)` pair.
    #[inline]
    pub fn to_polar(self) -> (f64, f64) {
        (self.abs(), self.arg())
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns a non-finite value when `z` is zero, mirroring `f64` division.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.abs_sq();
        Self::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Self::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Principal natural logarithm.
    #[inline]
    pub fn ln(self) -> Self {
        Self::new(self.abs().ln(), self.arg())
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        let (r, theta) = self.to_polar();
        Self::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }

    /// Fused multiply-add: `self * b + c`.
    #[inline]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        Self::new(
            self.re.mul_add(b.re, -(self.im * b.im)) + c.re,
            self.re.mul_add(b.im, self.im * b.re) + c.im,
        )
    }

    /// `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// `true` when `|self − other| ≤ tol`.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self - other).abs() <= tol
    }

    /// Unit phasor `z/|z|`, or zero when `|z|` underflows.
    ///
    /// Used for the phase-preserving part of modulus-based activations.
    #[inline]
    pub fn unit_or_zero(self) -> Self {
        let m = self.abs();
        if m > f64::MIN_POSITIVE {
            Self::new(self.re / m, self.im / m)
        } else {
            ZERO
        }
    }

    /// Raises to a real power via polar form.
    #[inline]
    pub fn powf(self, k: f64) -> Self {
        let (r, theta) = self.to_polar();
        Self::from_polar(r.powf(k), theta * k)
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::new(re, 0.0)
    }
}

impl From<(f64, f64)> for C64 {
    #[inline]
    fn from((re, im): (f64, f64)) -> Self {
        Self::new(re, im)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: C64) -> C64 {
        let d = rhs.abs_sq();
        C64::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl Add<f64> for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: f64) -> C64 {
        C64::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: f64) -> C64 {
        C64::new(self.re - rhs, self.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a C64> for C64 {
    fn sum<I: Iterator<Item = &'a C64>>(iter: I) -> C64 {
        iter.fold(ZERO, |a, b| a + *b)
    }
}

impl Product for C64 {
    fn product<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(ONE, |a, b| a * b)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const TOL: f64 = 1e-12;

    #[test]
    fn construction_and_constants() {
        assert_eq!(C64::new(1.5, -2.0).re, 1.5);
        assert_eq!(C64::new(1.5, -2.0).im, -2.0);
        assert_eq!(C64::zero(), ZERO);
        assert_eq!(C64::one(), ONE);
        assert_eq!(C64::i(), I);
        assert_eq!(C64::default(), ZERO);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((I * I).approx_eq(-ONE, TOL));
    }

    #[test]
    fn arithmetic_identities() {
        let a = C64::new(3.0, -4.0);
        let b = C64::new(-1.0, 2.5);
        assert!((a + b - b).approx_eq(a, TOL));
        assert!((a * b / b).approx_eq(a, TOL));
        assert!((a * b).approx_eq(b * a, TOL));
        assert!((-a + a).approx_eq(ZERO, TOL));
    }

    #[test]
    fn division_matches_inverse() {
        let a = C64::new(2.0, -3.0);
        let b = C64::new(0.5, 1.0);
        assert!((a / b).approx_eq(a * b.recip(), TOL));
    }

    #[test]
    fn conjugate_properties() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(-0.5, 0.25);
        assert!((a * b).conj().approx_eq(a.conj() * b.conj(), TOL));
        assert!((a * a.conj()).approx_eq(C64::from(a.abs_sq()), TOL));
    }

    #[test]
    fn modulus_and_argument() {
        let z = C64::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < TOL);
        assert!((z.abs_sq() - 25.0).abs() < TOL);
        assert!((I.arg() - FRAC_PI_2).abs() < TOL);
        // Negation of +0.0 gives −0.0, so the argument is ±π.
        assert!(((-ONE).arg().abs() - PI).abs() < TOL);
    }

    #[test]
    fn polar_roundtrip() {
        let z = C64::new(-2.0, 0.7);
        let (r, t) = z.to_polar();
        assert!(C64::from_polar(r, t).approx_eq(z, TOL));
    }

    #[test]
    fn cis_is_unit_modulus() {
        for k in 0..16 {
            let theta = k as f64 * PI / 8.0;
            assert!((C64::cis(theta).abs() - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn exp_of_i_pi_is_minus_one() {
        assert!(C64::new(0.0, PI).exp().approx_eq(-ONE, TOL));
    }

    #[test]
    fn exp_ln_roundtrip() {
        let z = C64::new(0.3, -1.2);
        assert!(z.ln().exp().approx_eq(z, TOL));
    }

    #[test]
    fn sqrt_squares_back() {
        let z = C64::new(-3.0, 1.0);
        let s = z.sqrt();
        assert!((s * s).approx_eq(z, 1e-10));
    }

    #[test]
    fn unit_or_zero_behaviour() {
        let z = C64::new(3.0, 4.0);
        assert!((z.unit_or_zero().abs() - 1.0).abs() < TOL);
        assert_eq!(ZERO.unit_or_zero(), ZERO);
    }

    #[test]
    fn powf_matches_repeated_multiplication() {
        let z = C64::new(0.8, 0.3);
        assert!(z.powf(3.0).approx_eq(z * z * z, 1e-10));
    }

    #[test]
    fn sum_and_product_fold() {
        let xs = [C64::new(1.0, 1.0), C64::new(2.0, -1.0), C64::new(-0.5, 0.0)];
        let s: C64 = xs.iter().sum();
        assert!(s.approx_eq(C64::new(2.5, 0.0), TOL));
        let p: C64 = xs.iter().copied().product();
        assert!(p.approx_eq(
            C64::new(1.0, 1.0) * C64::new(2.0, -1.0) * C64::new(-0.5, 0.0),
            TOL
        ));
    }

    #[test]
    fn mixed_real_ops() {
        let z = C64::new(1.0, -2.0);
        assert!((z * 2.0).approx_eq(C64::new(2.0, -4.0), TOL));
        assert!((2.0 * z).approx_eq(C64::new(2.0, -4.0), TOL));
        assert!((z / 2.0).approx_eq(C64::new(0.5, -1.0), TOL));
        assert!((z + 1.0).approx_eq(C64::new(2.0, -2.0), TOL));
        assert!((z - 1.0).approx_eq(C64::new(0.0, -2.0), TOL));
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = C64::new(1.1, -0.4);
        let b = C64::new(-2.0, 0.5);
        let c = C64::new(0.25, 3.0);
        assert!(a.mul_add(b, c).approx_eq(a * b + c, 1e-12));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(C64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(C64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn assign_ops() {
        let mut z = C64::new(1.0, 1.0);
        z += C64::new(1.0, 0.0);
        assert!(z.approx_eq(C64::new(2.0, 1.0), TOL));
        z -= C64::new(0.0, 1.0);
        assert!(z.approx_eq(C64::new(2.0, 0.0), TOL));
        z *= C64::new(0.0, 1.0);
        assert!(z.approx_eq(C64::new(0.0, 2.0), TOL));
        z /= C64::new(0.0, 2.0);
        assert!(z.approx_eq(ONE, TOL));
        z *= 3.0;
        assert!(z.approx_eq(C64::new(3.0, 0.0), TOL));
    }
}
