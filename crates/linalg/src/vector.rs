//! Free functions over complex vectors (`&[C64]`).
//!
//! The SPNN stack passes optical field amplitudes around as plain `Vec<C64>`;
//! these helpers provide the handful of BLAS-1 style operations needed on
//! top of that representation.

use crate::c64::C64;

/// Hermitian inner product `⟨a, b⟩ = Σ conj(aᵢ)·bᵢ`.
///
/// # Panics
///
/// Panics if the vectors differ in length.
///
/// # Example
///
/// ```
/// use spnn_linalg::{C64, vector::dot};
/// let a = [C64::new(0.0, 1.0)];
/// let b = [C64::new(0.0, 1.0)];
/// assert!((dot(&a, &b).re - 1.0).abs() < 1e-15);
/// ```
pub fn dot(a: &[C64], b: &[C64]) -> C64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter()
        .zip(b.iter())
        .fold(C64::zero(), |acc, (x, y)| acc + x.conj() * *y)
}

/// Euclidean norm `√Σ|aᵢ|²`.
pub fn norm(a: &[C64]) -> f64 {
    a.iter().map(|z| z.abs_sq()).sum::<f64>().sqrt()
}

/// Squared Euclidean norm `Σ|aᵢ|²` — total optical power of a field vector.
pub fn norm_sq(a: &[C64]) -> f64 {
    a.iter().map(|z| z.abs_sq()).sum()
}

/// Scales a vector in place by a complex factor.
pub fn scale_inplace(a: &mut [C64], k: C64) {
    for z in a {
        *z *= k;
    }
}

/// Normalizes a vector in place to unit Euclidean norm.
///
/// Vectors with norm below `f64::MIN_POSITIVE` are left unchanged.
pub fn normalize_inplace(a: &mut [C64]) {
    let n = norm(a);
    if n > f64::MIN_POSITIVE {
        for z in a {
            *z = *z / n;
        }
    }
}

/// `a + b` elementwise.
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn add(a: &[C64], b: &[C64]) -> Vec<C64> {
    assert_eq!(a.len(), b.len(), "add length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| *x + *y).collect()
}

/// `a − b` elementwise.
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn sub(a: &[C64], b: &[C64]) -> Vec<C64> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| *x - *y).collect()
}

/// Elementwise (Hadamard) product.
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn hadamard(a: &[C64], b: &[C64]) -> Vec<C64> {
    assert_eq!(a.len(), b.len(), "hadamard length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| *x * *y).collect()
}

/// Elementwise modulus — converts field amplitudes to magnitudes.
pub fn abs(a: &[C64]) -> Vec<f64> {
    a.iter().map(|z| z.abs()).collect()
}

/// Elementwise squared modulus — photodetector intensity readout.
pub fn intensity(a: &[C64]) -> Vec<f64> {
    a.iter().map(|z| z.abs_sq()).collect()
}

/// Lifts a real vector into the complex plane (imag = 0).
pub fn from_real(a: &[f64]) -> Vec<C64> {
    a.iter().map(|&x| C64::from(x)).collect()
}

/// Maximum elementwise distance `max |aᵢ − bᵢ|`.
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn max_distance(a: &[C64], b: &[C64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_distance length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_is_conjugate_linear_in_first_arg() {
        let a = [C64::new(1.0, 2.0), C64::new(-0.5, 0.0)];
        let b = [C64::new(0.0, 1.0), C64::new(2.0, 2.0)];
        let lhs = dot(&a, &b).conj();
        let rhs = dot(&b, &a);
        assert!(lhs.approx_eq(rhs, 1e-14));
    }

    #[test]
    fn dot_with_self_is_norm_sq() {
        let a = [C64::new(3.0, 4.0), C64::new(0.0, -1.0)];
        let d = dot(&a, &a);
        assert!((d.re - norm_sq(&a)).abs() < 1e-14);
        assert!(d.im.abs() < 1e-14);
        assert!((norm(&a) - 26.0_f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    fn normalize_gives_unit_norm() {
        let mut a = vec![C64::new(3.0, 0.0), C64::new(0.0, 4.0)];
        normalize_inplace(&mut a);
        assert!((norm(&a) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut a = vec![C64::zero(); 3];
        normalize_inplace(&mut a);
        assert!(a.iter().all(|&z| z == C64::zero()));
    }

    #[test]
    fn elementwise_ops() {
        let a = [C64::new(1.0, 1.0), C64::new(2.0, 0.0)];
        let b = [C64::new(0.5, -1.0), C64::new(1.0, 1.0)];
        let s = add(&a, &b);
        assert!(s[0].approx_eq(C64::new(1.5, 0.0), 1e-15));
        let d = sub(&a, &b);
        assert!(d[1].approx_eq(C64::new(1.0, -1.0), 1e-15));
        let h = hadamard(&a, &b);
        assert!(h[0].approx_eq(C64::new(1.5, -0.5), 1e-15));
    }

    #[test]
    fn intensity_matches_abs_sq() {
        let a = [C64::new(3.0, 4.0)];
        assert!((intensity(&a)[0] - 25.0).abs() < 1e-14);
        assert!((abs(&a)[0] - 5.0).abs() < 1e-14);
    }

    #[test]
    fn power_conservation_under_scale_by_phasor() {
        let mut a = vec![C64::new(1.0, 2.0), C64::new(-3.0, 0.5)];
        let before = norm_sq(&a);
        scale_inplace(&mut a, C64::cis(1.234));
        assert!((norm_sq(&a) - before).abs() < 1e-12);
    }

    #[test]
    fn from_real_roundtrip() {
        let v = from_real(&[1.0, -2.0]);
        assert_eq!(v[0], C64::new(1.0, 0.0));
        assert_eq!(v[1], C64::new(-2.0, 0.0));
    }

    #[test]
    fn max_distance_zero_iff_equal() {
        let a = [C64::new(1.0, 1.0)];
        assert_eq!(max_distance(&a, &a), 0.0);
        let b = [C64::new(1.0, 2.0)];
        assert!((max_distance(&a, &b) - 1.0).abs() < 1e-15);
    }
}
