//! Complex singular value decomposition via one-sided Jacobi rotations.
//!
//! Every SPNN linear layer `M` is factored as `M = U·Σ·Vᴴ` (paper §II-B) and
//! each factor is then realized photonically: `U` and `Vᴴ` as Clements MZI
//! meshes and `Σ` as a line of terminated MZIs with a global gain `β`. This
//! module provides that factorization from scratch.
//!
//! One-sided Jacobi was chosen over Golub–Kahan bidiagonalization because it
//! is simple, numerically robust, and more than fast enough for the ≤ 16×16
//! matrices of the paper's network (performance is characterized in the
//! Criterion benches).

use crate::c64::C64;
use crate::matrix::CMatrix;
use crate::vector::{dot, norm};
use crate::{LinalgError, Result};

/// Full singular value decomposition `A = U · Σ · Vᴴ`.
///
/// - `u` is `m×m` unitary,
/// - `s` holds the `min(m, n)` singular values, sorted descending,
/// - `v` is `n×n` unitary (note: `v`, **not** `vᴴ`).
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (`m×m`, unitary).
    pub u: CMatrix,
    /// Singular values, descending, length `min(m, n)`.
    pub s: Vec<f64>,
    /// Right singular vectors (`n×n`, unitary; the decomposition uses `vᴴ`).
    pub v: CMatrix,
}

impl Svd {
    /// Rebuilds `U · Σ · Vᴴ` — mainly for testing and diagnostics.
    pub fn reconstruct(&self) -> CMatrix {
        let m = self.u.rows();
        let n = self.v.rows();
        let mut sigma = CMatrix::zeros(m, n);
        for (i, &s) in self.s.iter().enumerate() {
            sigma[(i, i)] = C64::from(s);
        }
        self.u.mul(&sigma).mul(&self.v.adjoint())
    }

    /// The largest singular value (the paper's global amplification `β`),
    /// or 0 for an all-zero matrix.
    pub fn spectral_norm(&self) -> f64 {
        self.s.first().copied().unwrap_or(0.0)
    }
}

/// Maximum number of Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 64;
/// Off-diagonal tolerance relative to column norms.
const TOL: f64 = 1e-14;

/// Computes the full SVD of a complex matrix.
///
/// # Errors
///
/// Returns [`LinalgError::NotConverged`] if the Jacobi sweeps fail to
/// converge (not observed in practice for well-scaled inputs).
///
/// # Example
///
/// ```
/// use spnn_linalg::{CMatrix, svd::svd};
/// let a = CMatrix::from_real_rows(&[&[3.0, 0.0], &[0.0, -2.0]]);
/// let f = svd(&a)?;
/// assert!((f.s[0] - 3.0).abs() < 1e-12);
/// assert!((f.s[1] - 2.0).abs() < 1e-12);
/// assert!(f.reconstruct().approx_eq(&a, 1e-12));
/// # Ok::<(), spnn_linalg::LinalgError>(())
/// ```
pub fn svd(a: &CMatrix) -> Result<Svd> {
    let (m, n) = a.shape();
    if m >= n {
        svd_tall(a)
    } else {
        // A = U Σ Vᴴ  ⇔  Aᴴ = V Σ Uᴴ: decompose the adjoint and swap factors.
        let f = svd_tall(&a.adjoint())?;
        Ok(Svd {
            u: f.v,
            s: f.s,
            v: f.u,
        })
    }
}

/// One-sided Jacobi SVD for `m ≥ n`.
fn svd_tall(a: &CMatrix) -> Result<Svd> {
    let (m, n) = a.shape();
    debug_assert!(m >= n);

    // Work on columns of A; accumulate rotations into V.
    let mut cols: Vec<Vec<C64>> = (0..n).map(|j| a.col(j)).collect();
    let mut v = CMatrix::identity(n);

    let mut converged = false;
    let mut sweeps = 0;
    while sweeps < MAX_SWEEPS {
        sweeps += 1;
        let mut off = 0.0_f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let app: f64 = cols[p].iter().map(|z| z.abs_sq()).sum();
                let aqq: f64 = cols[q].iter().map(|z| z.abs_sq()).sum();
                let apq = dot(&cols[p], &cols[q]); // Σ conj(A_ip)·A_iq
                let beta = apq.abs();
                let scale = (app * aqq).sqrt();
                if scale <= 0.0 || beta <= TOL * scale {
                    continue;
                }
                off = off.max(beta / scale);

                // Remove the phase of the Gram off-diagonal, then apply the
                // classic real Jacobi rotation that annihilates it.
                let psi = apq.arg();
                let tau = (aqq - app) / (2.0 * beta);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                let phase = C64::cis(-psi);

                // Column update: J = diag(1, e^{−iψ}) · [[c, s], [−s, c]]
                //   new_p = c·A_p − s·e^{−iψ}·A_q
                //   new_q = s·A_p + c·e^{−iψ}·A_q
                let (head, tail) = cols.split_at_mut(q);
                let colp = &mut head[p];
                let colq = &mut tail[0];
                for (zp, zq) in colp.iter_mut().zip(colq.iter_mut()) {
                    let rotated_q = phase * *zq;
                    let new_p = zp.scale(c) - rotated_q.scale(s);
                    let new_q = zp.scale(s) + rotated_q.scale(c);
                    *zp = new_p;
                    *zq = new_q;
                }
                // Same two-column rotation on V.
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = phase * v[(i, q)];
                    v[(i, p)] = vp.scale(c) - vq.scale(s);
                    v[(i, q)] = vp.scale(s) + vq.scale(c);
                }
            }
        }
        if off < 1e-13 {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(LinalgError::NotConverged {
            algorithm: "jacobi-svd",
            iterations: sweeps,
        });
    }

    // Singular values = column norms; left singular vectors = normalized columns.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = cols.iter().map(|c| norm(c)).collect();
    order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).expect("finite norms"));

    let max_norm = norms.iter().cloned().fold(0.0, f64::max);
    let zero_tol = max_norm * 1e-13;

    let mut s = Vec::with_capacity(n);
    let mut u_cols: Vec<Vec<C64>> = Vec::with_capacity(m);
    let mut v_sorted = CMatrix::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        let sigma = norms[old_j];
        s.push(sigma);
        for i in 0..n {
            v_sorted[(i, new_j)] = v[(i, old_j)];
        }
        if sigma > zero_tol && sigma > 0.0 {
            let col: Vec<C64> = cols[old_j].iter().map(|&z| z / sigma).collect();
            u_cols.push(col);
        }
    }
    // Numerically zero singular values.
    for x in s.iter_mut() {
        if *x <= zero_tol {
            *x = 0.0;
        }
    }

    // Complete U to a full m×m unitary with modified Gram–Schmidt against the
    // canonical basis (re-orthogonalized twice for robustness).
    complete_basis(&mut u_cols, m);
    debug_assert_eq!(u_cols.len(), m);

    let mut u = CMatrix::zeros(m, m);
    for (j, col) in u_cols.iter().enumerate() {
        for i in 0..m {
            u[(i, j)] = col[i];
        }
    }

    Ok(Svd { u, s, v: v_sorted })
}

/// Extends an orthonormal set of `m`-vectors to a full basis of `Cᵐ`.
fn complete_basis(cols: &mut Vec<Vec<C64>>, m: usize) {
    let mut candidate = 0;
    while cols.len() < m && candidate < 2 * m {
        // Cycle through canonical basis vectors; with k < m existing columns,
        // at least one candidate always has residual norm² ≥ 1 − k/m.
        let idx = candidate % m;
        candidate += 1;
        let mut e = vec![C64::zero(); m];
        e[idx] = C64::one();
        for _ in 0..2 {
            // re-orthogonalize twice (Kahan's "twice is enough")
            for col in cols.iter() {
                let proj = dot(col, &e);
                for (ei, ci) in e.iter_mut().zip(col.iter()) {
                    *ei -= proj * *ci;
                }
            }
        }
        let nrm = norm(&e);
        if nrm > 1e-6 {
            for z in &mut e {
                *z = *z / nrm;
            }
            cols.push(e);
        }
    }
    assert_eq!(cols.len(), m, "failed to complete orthonormal basis");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{gaussian_complex, haar_unitary};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_matrix(m: usize, n: usize, seed: u64) -> CMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        CMatrix::from_fn(m, n, |_, _| gaussian_complex(&mut rng))
    }

    fn check_svd(a: &CMatrix, tol: f64) {
        let f = svd(a).expect("svd converged");
        let (m, n) = a.shape();
        assert_eq!(f.u.shape(), (m, m));
        assert_eq!(f.v.shape(), (n, n));
        assert_eq!(f.s.len(), m.min(n));
        assert!(f.u.is_unitary(tol), "U not unitary");
        assert!(f.v.is_unitary(tol), "V not unitary");
        for w in f.s.windows(2) {
            assert!(
                w[0] >= w[1] - 1e-12,
                "singular values not sorted: {:?}",
                f.s
            );
        }
        assert!(f.s.iter().all(|&x| x >= 0.0), "negative singular value");
        assert!(f.reconstruct().approx_eq(a, tol), "U Σ Vᴴ != A");
    }

    #[test]
    fn svd_square_random() {
        for seed in 0..5 {
            check_svd(&random_matrix(6, 6, seed), 1e-10);
        }
    }

    #[test]
    fn svd_tall_random() {
        check_svd(&random_matrix(8, 3, 10), 1e-10);
        check_svd(&random_matrix(16, 10, 11), 1e-10);
    }

    #[test]
    fn svd_wide_random() {
        check_svd(&random_matrix(3, 8, 20), 1e-10);
        check_svd(&random_matrix(10, 16, 21), 1e-10);
    }

    #[test]
    fn svd_paper_layer_shapes() {
        // The paper's three weight matrices: 16×16, 16×16, 10×16.
        check_svd(&random_matrix(16, 16, 30), 1e-9);
        check_svd(&random_matrix(10, 16, 31), 1e-9);
    }

    #[test]
    fn svd_diagonal_matrix() {
        let a = CMatrix::from_diag(&[C64::from(5.0), C64::from(1.0), C64::from(3.0)]);
        let f = svd(&a).unwrap();
        assert!((f.s[0] - 5.0).abs() < 1e-12);
        assert!((f.s[1] - 3.0).abs() < 1e-12);
        assert!((f.s[2] - 1.0).abs() < 1e-12);
        assert!(f.reconstruct().approx_eq(&a, 1e-11));
    }

    #[test]
    fn svd_of_unitary_has_unit_singular_values() {
        let mut rng = StdRng::seed_from_u64(40);
        let a = haar_unitary(7, &mut rng);
        let f = svd(&a).unwrap();
        for &s in &f.s {
            assert!((s - 1.0).abs() < 1e-10, "singular value {s} != 1");
        }
    }

    #[test]
    fn svd_rank_deficient() {
        // Outer product: rank one.
        let mut rng = StdRng::seed_from_u64(41);
        let u = crate::random::gaussian_vector(5, &mut rng);
        let w = crate::random::gaussian_vector(5, &mut rng);
        let a = CMatrix::from_fn(5, 5, |r, c| u[r] * w[c].conj());
        let f = svd(&a).unwrap();
        assert!(f.s[0] > 1e-6);
        for &s in &f.s[1..] {
            assert!(s < 1e-9, "rank-1 matrix has extra singular value {s}");
        }
        assert!(f.reconstruct().approx_eq(&a, 1e-10));
        assert!(f.u.is_unitary(1e-10));
    }

    #[test]
    fn svd_zero_matrix() {
        let a = CMatrix::zeros(4, 3);
        let f = svd(&a).unwrap();
        assert!(f.s.iter().all(|&s| s == 0.0));
        assert!(f.u.is_unitary(1e-12));
        assert!(f.v.is_unitary(1e-12));
        assert!(f.reconstruct().approx_eq(&a, 1e-12));
    }

    #[test]
    fn svd_1x1() {
        let a = CMatrix::from_fn(1, 1, |_, _| C64::new(0.0, -2.0));
        let f = svd(&a).unwrap();
        assert!((f.s[0] - 2.0).abs() < 1e-14);
        assert!(f.reconstruct().approx_eq(&a, 1e-13));
    }

    #[test]
    fn spectral_norm_is_max_singular_value() {
        let a = random_matrix(5, 5, 50);
        let f = svd(&a).unwrap();
        assert_eq!(f.spectral_norm(), f.s[0]);
    }

    #[test]
    fn singular_values_match_gram_eigenvalues_frobenius() {
        // Σ sᵢ² must equal ‖A‖_F².
        let a = random_matrix(6, 4, 60);
        let f = svd(&a).unwrap();
        let sum_sq: f64 = f.s.iter().map(|s| s * s).sum();
        let fro = a.frobenius_norm();
        assert!((sum_sq - fro * fro).abs() < 1e-9 * fro * fro.max(1.0));
    }
}
