//! Householder QR factorization of complex matrices.
//!
//! Used for Haar-random unitary generation ([`crate::random::haar_unitary`])
//! and as a building block for orthonormalization tests throughout the
//! photonic-mesh stack.

use crate::c64::C64;
use crate::matrix::CMatrix;
use crate::{LinalgError, Result};

/// The result of a QR factorization: `A = Q · R` with `Q` unitary (m×m) and
/// `R` upper triangular (m×n).
#[derive(Debug, Clone)]
pub struct Qr {
    /// The unitary factor (m×m).
    pub q: CMatrix,
    /// The upper-triangular factor (m×n).
    pub r: CMatrix,
}

/// Computes a Householder QR factorization `A = Q·R`.
///
/// Works for any rectangular shape. `Q` is square `m×m`; `R` has the shape of
/// `A` and is upper triangular (entries below the main diagonal are
/// numerically zero).
///
/// # Errors
///
/// Never fails for non-empty input; returns [`LinalgError::Empty`] only if
/// the input has a zero dimension (which [`CMatrix`] already forbids, so this
/// is defensive).
///
/// # Example
///
/// ```
/// use spnn_linalg::{CMatrix, C64, qr::qr};
/// let a = CMatrix::from_real_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
/// let f = qr(&a)?;
/// assert!(f.q.is_unitary(1e-12));
/// assert!(f.q.mul(&f.r).approx_eq(&a, 1e-12));
/// # Ok::<(), spnn_linalg::LinalgError>(())
/// ```
pub fn qr(a: &CMatrix) -> Result<Qr> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinalgError::Empty);
    }
    let mut r = a.clone();
    let mut q = CMatrix::identity(m);
    let steps = m.min(n);

    for k in 0..steps {
        // Build the Householder vector v that annihilates R[k+1.., k].
        let mut v = vec![C64::zero(); m - k];
        let mut norm_x_sq = 0.0;
        for i in k..m {
            v[i - k] = r[(i, k)];
            norm_x_sq += r[(i, k)].abs_sq();
        }
        let norm_x = norm_x_sq.sqrt();
        if norm_x < 1e-300 {
            continue; // column already zero below the diagonal
        }
        // alpha = -e^{i·arg(x₀)}·‖x‖ guarantees no cancellation in v₀.
        let x0 = v[0];
        let phase = if x0.abs() > 0.0 {
            x0.unit_or_zero()
        } else {
            C64::one()
        };
        let alpha = -phase * norm_x;
        v[0] -= alpha;
        let v_norm_sq: f64 = v.iter().map(|z| z.abs_sq()).sum();
        if v_norm_sq < 1e-300 {
            continue; // x was already ±‖x‖·e₁
        }
        let tau = 2.0 / v_norm_sq;

        // R ← H·R where H = I − τ·v·vᴴ, applied to the trailing block.
        for j in k..n {
            let mut w = C64::zero();
            for i in k..m {
                w += v[i - k].conj() * r[(i, j)];
            }
            let w = w * tau;
            for i in k..m {
                let upd = v[i - k] * w;
                r[(i, j)] -= upd;
            }
        }
        // Q ← Q·H (accumulate from the right so Q = H₁·H₂·… at the end,
        // i.e. A = Q·R).
        for i in 0..m {
            let mut w = C64::zero();
            for j in k..m {
                w += q[(i, j)] * v[j - k];
            }
            let w = w * tau;
            for j in k..m {
                let upd = w * v[j - k].conj();
                q[(i, j)] -= upd;
            }
        }
    }

    // Clean numerical dust below the diagonal so R is exactly triangular.
    for i in 1..m {
        for j in 0..i.min(n) {
            r[(i, j)] = C64::zero();
        }
    }

    Ok(Qr { q, r })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{gaussian_complex, haar_unitary};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_matrix(m: usize, n: usize, seed: u64) -> CMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        CMatrix::from_fn(m, n, |_, _| gaussian_complex(&mut rng))
    }

    #[test]
    fn qr_reconstructs_square() {
        let a = random_matrix(5, 5, 1);
        let f = qr(&a).unwrap();
        assert!(f.q.is_unitary(1e-11), "Q not unitary");
        assert!(f.q.mul(&f.r).approx_eq(&a, 1e-11), "QR != A");
    }

    #[test]
    fn qr_reconstructs_tall() {
        let a = random_matrix(7, 3, 2);
        let f = qr(&a).unwrap();
        assert!(f.q.is_unitary(1e-11));
        assert!(f.q.mul(&f.r).approx_eq(&a, 1e-11));
        assert_eq!(f.r.shape(), (7, 3));
    }

    #[test]
    fn qr_reconstructs_wide() {
        let a = random_matrix(3, 6, 3);
        let f = qr(&a).unwrap();
        assert!(f.q.is_unitary(1e-11));
        assert!(f.q.mul(&f.r).approx_eq(&a, 1e-11));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = random_matrix(6, 6, 4);
        let f = qr(&a).unwrap();
        for i in 0..6 {
            for j in 0..i {
                assert_eq!(f.r[(i, j)], C64::zero());
            }
        }
    }

    #[test]
    fn qr_of_identity() {
        let a = CMatrix::identity(4);
        let f = qr(&a).unwrap();
        assert!(f.q.mul(&f.r).approx_eq(&a, 1e-12));
    }

    #[test]
    fn qr_of_unitary_gives_unit_modulus_diagonal() {
        let mut rng = StdRng::seed_from_u64(9);
        let u = haar_unitary(5, &mut rng);
        let f = qr(&u).unwrap();
        for i in 0..5 {
            assert!((f.r[(i, i)].abs() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn qr_handles_rank_deficient() {
        // Two identical columns.
        let mut a = random_matrix(4, 4, 5);
        for i in 0..4 {
            let v = a[(i, 0)];
            a[(i, 1)] = v;
        }
        let f = qr(&a).unwrap();
        assert!(f.q.mul(&f.r).approx_eq(&a, 1e-11));
        assert!(f.q.is_unitary(1e-11));
    }

    #[test]
    fn qr_1x1() {
        let a = CMatrix::from_real_rows(&[&[-2.0]]);
        let f = qr(&a).unwrap();
        assert!(f.q.mul(&f.r).approx_eq(&a, 1e-14));
        assert!((f.q[(0, 0)].abs() - 1.0).abs() < 1e-14);
    }
}
