//! Dense, row-major complex matrix.
//!
//! [`CMatrix`] is the single matrix type used throughout the SPNN stack. It
//! is intentionally simple — a `Vec<C64>` plus a shape — because the matrices
//! in this domain are small (≤ a few hundred rows) and the interesting work
//! happens in the photonic models, not in BLAS-level tuning.

use crate::c64::C64;
use crate::{LinalgError, Result};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense complex matrix stored in row-major order.
///
/// # Example
///
/// ```
/// use spnn_linalg::{C64, CMatrix};
///
/// let a = CMatrix::identity(3);
/// let b = CMatrix::from_fn(3, 3, |r, c| C64::new((r + c) as f64, 0.0));
/// let c = a.mul(&b);
/// assert_eq!(c, b);
/// ```
#[derive(Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMatrix {
    /// Creates an all-zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `cols == 0`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix shape must be non-zero");
        Self {
            rows,
            cols,
            data: vec![C64::zero(); rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::one();
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn<F: FnMut(usize, usize) -> C64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Builds a matrix from a row-major element vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `data.len() != rows * cols`
    /// and [`LinalgError::Empty`] for zero-sized shapes.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<C64>) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::Empty);
        }
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                left: (rows, cols),
                right: (data.len(), 1),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a matrix from nested row slices of real numbers (imag = 0).
    ///
    /// Convenient for tests and examples.
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged or empty.
    pub fn from_real_rows(rows: &[&[f64]]) -> Self {
        assert!(
            !rows.is_empty() && !rows[0].is_empty(),
            "rows must be non-empty"
        );
        let cols = rows[0].len();
        let mut m = Self::zeros(rows.len(), cols);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "ragged rows");
            for (c, &x) in row.iter().enumerate() {
                m[(r, c)] = C64::from(x);
            }
        }
        m
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    ///
    /// # Panics
    ///
    /// Panics if `diag` is empty.
    pub fn from_diag(diag: &[C64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the underlying row-major element slice.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutable view of the underlying row-major element slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major element vector.
    #[inline]
    pub fn into_vec(self) -> Vec<C64> {
        self.data
    }

    /// Borrow of row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[C64] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> Vec<C64> {
        assert!(c < self.cols, "col {c} out of bounds ({})", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Conjugate transpose `Aᴴ` (the Hermitian adjoint).
    pub fn adjoint(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self[(c, r)].conj())
    }

    /// Element-wise complex conjugate.
    pub fn conj(&self) -> Self {
        let mut out = self.clone();
        for z in out.as_mut_slice() {
            *z = z.conj();
        }
        out
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`. Use [`CMatrix::try_mul`] for a
    /// fallible version.
    pub fn mul(&self, rhs: &CMatrix) -> CMatrix {
        self.try_mul(rhs).expect("matrix dimension mismatch in mul")
    }

    /// Fallible matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when the inner dimensions differ.
    pub fn try_mul(&self, rhs: &CMatrix) -> Result<CMatrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop contiguous in both `rhs` and `out`.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == C64::zero() {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &r) in orow.iter_mut().zip(rrow.iter()) {
                    *o += aik * r;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product `self · rhs` written into an existing matrix,
    /// avoiding the allocation of [`CMatrix::mul`]. `out` is fully
    /// overwritten; its prior contents never influence the result, and the
    /// accumulation is **bit-identical** to `mul` (same skip-zero i-k-j
    /// loop). Hot loops (Monte-Carlo realization) reuse one `out` per
    /// layer across iterations.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()` or `out` has the wrong shape.
    pub fn mul_into(&self, rhs: &CMatrix, out: &mut CMatrix) {
        assert_eq!(self.cols, rhs.rows, "matrix dimension mismatch in mul_into");
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols),
            "output shape mismatch in mul_into"
        );
        out.fill(C64::zero());
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == C64::zero() {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &r) in orow.iter_mut().zip(rrow.iter()) {
                    *o += aik * r;
                }
            }
        }
    }

    /// Sets every element to `v` in place.
    #[inline]
    pub fn fill(&mut self, v: C64) {
        self.data.fill(v);
    }

    /// Rewrites the matrix to the identity in place.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn set_identity(&mut self) {
        assert!(self.is_square(), "set_identity requires a square matrix");
        self.data.fill(C64::zero());
        for i in 0..self.rows {
            let c = self.cols;
            self.data[i * c + i] = C64::one();
        }
    }

    /// Batched matrix product `self · rhs` whose column `j` is
    /// **bit-identical** to `self.mul_vec(rhs.col(j))`.
    ///
    /// [`CMatrix::mul`] skips structurally zero elements of `self` as an
    /// optimization, which can reorder the floating-point accumulation
    /// relative to [`CMatrix::mul_vec`]. This variant keeps the exact
    /// `k`-ascending accumulation order of `mul_vec` for every output
    /// element, so a batch of sample vectors pushed through as one
    /// matrix-matrix product reproduces the per-sample results to the last
    /// bit. It is the reference implementation of the accumulation-order
    /// contract that `spnn-engine`'s (tiled, split-plane) batched forward
    /// kernel also honours for parity with the per-sample Monte-Carlo
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul_batch(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matrix dimension mismatch in mul_batch"
        );
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let arow = self.row(i);
            let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &aik) in arow.iter().enumerate() {
                let rrow = rhs.row(k);
                for (o, &r) in orow.iter_mut().zip(rrow.iter()) {
                    *o += aik * r;
                }
            }
        }
        out
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[C64]) -> Vec<C64> {
        assert_eq!(v.len(), self.cols, "matrix-vector dimension mismatch");
        let mut out = vec![C64::zero(); self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = C64::zero();
            for (&a, &x) in row.iter().zip(v.iter()) {
                acc += a * x;
            }
            *o = acc;
        }
        out
    }

    /// Adjoint–vector product `selfᴴ · v` without materializing the adjoint.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.rows()`.
    pub fn adjoint_mul_vec(&self, v: &[C64]) -> Vec<C64> {
        assert_eq!(v.len(), self.rows, "matrix-vector dimension mismatch");
        let mut out = vec![C64::zero(); self.cols];
        for r in 0..self.rows {
            let vr = v[r];
            for (c, o) in out.iter_mut().enumerate() {
                *o += self[(r, c)].conj() * vr;
            }
        }
        out
    }

    /// Scales every element by a complex factor.
    pub fn scale(&self, k: C64) -> Self {
        let mut out = self.clone();
        for z in out.as_mut_slice() {
            *z *= k;
        }
        out
    }

    /// Scales every element by a real factor.
    pub fn scale_real(&self, k: f64) -> Self {
        self.scale(C64::from(k))
    }

    /// Frobenius norm `√Σ|aᵢⱼ|²`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.abs_sq()).sum::<f64>().sqrt()
    }

    /// Largest element modulus `max |aᵢⱼ|`.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// `true` when `|self − other|` is elementwise within `tol`.
    pub fn approx_eq(&self, other: &CMatrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// `true` when the matrix is within `tol` of the identity.
    pub fn is_identity(&self, tol: f64) -> bool {
        self.is_square() && self.approx_eq(&CMatrix::identity(self.rows), tol)
    }

    /// `true` when `Aᴴ·A` is within `tol` of the identity (columns orthonormal).
    ///
    /// For square matrices this is the unitarity test used throughout the
    /// photonic-mesh code.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.adjoint().mul(self).is_identity(tol)
    }

    /// Extracts the rectangular block with top-left corner `(r0, c0)` and
    /// shape `(rows, cols)`.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the matrix bounds.
    pub fn block(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> CMatrix {
        assert!(
            r0 + rows <= self.rows && c0 + cols <= self.cols,
            "block out of bounds"
        );
        CMatrix::from_fn(rows, cols, |r, c| self[(r0 + r, c0 + c)])
    }

    /// Writes `block` into `self` with top-left corner `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the matrix bounds.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &CMatrix) {
        assert!(
            r0 + block.rows <= self.rows && c0 + block.cols <= self.cols,
            "block out of bounds"
        );
        for r in 0..block.rows {
            for c in 0..block.cols {
                self[(r0 + r, c0 + c)] = block[(r, c)];
            }
        }
    }

    /// The main diagonal as a vector (length `min(rows, cols)`).
    pub fn diag(&self) -> Vec<C64> {
        (0..self.rows.min(self.cols))
            .map(|i| self[(i, i)])
            .collect()
    }

    /// Sum of the elementwise relative deviation `Σ |aᵢⱼ − bᵢⱼ| / |bᵢⱼ|`.
    ///
    /// This is the paper's RVD figure of merit with `b` as the intended
    /// matrix; elements with `|bᵢⱼ|` below `eps` are skipped to avoid
    /// division blow-ups (the paper's unitaries have no structural zeros).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn relative_variation_distance(&self, intended: &CMatrix, eps: f64) -> f64 {
        assert_eq!(self.shape(), intended.shape(), "RVD shape mismatch");
        let mut acc = 0.0;
        for (a, b) in self.data.iter().zip(intended.data.iter()) {
            let denom = b.abs();
            if denom > eps {
                acc += (*a - *b).abs() / denom;
            }
        }
        acc
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: FnMut(C64) -> C64>(&mut self, mut f: F) {
        for z in &mut self.data {
            *z = f(*z);
        }
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = C64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &C64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut C64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        let mut out = self.clone();
        for (o, &r) in out.data.iter_mut().zip(rhs.data.iter()) {
            *o += r;
        }
        out
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "matrix subtraction shape mismatch"
        );
        let mut out = self.clone();
        for (o, &r) in out.data.iter_mut().zip(rhs.data.iter()) {
            *o -= r;
        }
        out
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        CMatrix::mul(self, rhs)
    }
}

impl Neg for &CMatrix {
    type Output = CMatrix;
    fn neg(self) -> CMatrix {
        self.scale_real(-1.0)
    }
}

impl fmt::Debug for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                let z = self[(r, c)];
                write!(f, "{:>7.3}{:+.3}i ", z.re, z.im)?;
            }
            if self.cols > 8 {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CMatrix {
        CMatrix::from_fn(3, 3, |r, c| C64::new(r as f64 + 1.0, c as f64 - 1.0))
    }

    #[test]
    fn zeros_and_identity() {
        let z = CMatrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == C64::zero()));
        assert!(CMatrix::identity(4).is_identity(0.0));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_shape_panics() {
        let _ = CMatrix::zeros(0, 3);
    }

    #[test]
    fn from_vec_validates_length() {
        let bad = CMatrix::from_vec(2, 2, vec![C64::zero(); 3]);
        assert!(matches!(bad, Err(LinalgError::ShapeMismatch { .. })));
        let empty = CMatrix::from_vec(0, 2, vec![]);
        assert!(matches!(empty, Err(LinalgError::Empty)));
        assert!(CMatrix::from_vec(2, 2, vec![C64::zero(); 4]).is_ok());
    }

    #[test]
    fn indexing_roundtrip() {
        let mut m = CMatrix::zeros(2, 2);
        m[(0, 1)] = C64::new(5.0, -1.0);
        assert_eq!(m[(0, 1)], C64::new(5.0, -1.0));
        assert_eq!(m[(1, 0)], C64::zero());
    }

    #[test]
    fn mul_identity_is_noop() {
        let a = sample();
        assert!(a.mul(&CMatrix::identity(3)).approx_eq(&a, 0.0));
        assert!(CMatrix::identity(3).mul(&a).approx_eq(&a, 0.0));
    }

    #[test]
    fn mul_known_product() {
        let a = CMatrix::from_real_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = CMatrix::from_real_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.mul(&b);
        let expect = CMatrix::from_real_rows(&[&[19.0, 22.0], &[43.0, 50.0]]);
        assert!(c.approx_eq(&expect, 1e-14));
    }

    #[test]
    fn try_mul_rejects_bad_shapes() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        assert!(matches!(
            a.try_mul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn mul_vec_matches_mul() {
        let a = sample();
        let v = vec![C64::new(1.0, 0.0), C64::new(0.0, 1.0), C64::new(-1.0, 2.0)];
        let as_mat = CMatrix::from_vec(3, 1, v.clone()).unwrap();
        let via_mat = a.mul(&as_mat);
        let via_vec = a.mul_vec(&v);
        for i in 0..3 {
            assert!(via_mat[(i, 0)].approx_eq(via_vec[i], 1e-14));
        }
    }

    #[test]
    fn mul_batch_is_bit_identical_to_per_column_mul_vec() {
        // Includes zero elements so the zero-skipping `mul` path and the
        // order-preserving `mul_batch` path would differ if conflated.
        let mut a = sample();
        a[(0, 1)] = C64::zero();
        a[(2, 0)] = C64::zero();
        let x = CMatrix::from_fn(3, 5, |r, c| {
            C64::new(
                (r * 5 + c) as f64 * 0.3 - 1.0,
                (c as f64) - (r as f64) * 0.7,
            )
        });
        let batched = a.mul_batch(&x);
        for j in 0..x.cols() {
            let per_sample = a.mul_vec(&x.col(j));
            for i in 0..a.rows() {
                assert_eq!(batched[(i, j)].re.to_bits(), per_sample[i].re.to_bits());
                assert_eq!(batched[(i, j)].im.to_bits(), per_sample[i].im.to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "mul_batch")]
    fn mul_batch_rejects_bad_shapes() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        let _ = a.mul_batch(&b);
    }

    #[test]
    fn adjoint_mul_vec_matches_explicit_adjoint() {
        let a = sample();
        let v = vec![C64::new(0.5, -1.0), C64::new(2.0, 0.0), C64::new(1.0, 1.0)];
        let expect = a.adjoint().mul_vec(&v);
        let got = a.adjoint_mul_vec(&v);
        for (e, g) in expect.iter().zip(got.iter()) {
            assert!(e.approx_eq(*g, 1e-14));
        }
    }

    #[test]
    fn adjoint_involution() {
        let a = sample();
        assert!(a.adjoint().adjoint().approx_eq(&a, 0.0));
    }

    #[test]
    fn adjoint_of_product_reverses() {
        let a = sample();
        let b = CMatrix::from_fn(3, 3, |r, c| C64::new(c as f64, r as f64 * 0.5));
        let lhs = a.mul(&b).adjoint();
        let rhs = b.adjoint().mul(&a.adjoint());
        assert!(lhs.approx_eq(&rhs, 1e-13));
    }

    #[test]
    fn transpose_vs_adjoint() {
        let a = sample();
        assert!(a.transpose().conj().approx_eq(&a.adjoint(), 0.0));
    }

    #[test]
    fn frobenius_norm_known() {
        let m = CMatrix::from_real_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-14);
    }

    #[test]
    fn block_and_set_block_roundtrip() {
        let a = sample();
        let b = a.block(1, 0, 2, 2);
        assert_eq!(b.shape(), (2, 2));
        assert_eq!(b[(0, 0)], a[(1, 0)]);
        let mut c = CMatrix::zeros(3, 3);
        c.set_block(1, 1, &b);
        assert_eq!(c[(2, 2)], a[(2, 1)]);
        assert_eq!(c[(0, 0)], C64::zero());
    }

    #[test]
    fn diag_extraction() {
        let d = CMatrix::from_diag(&[C64::new(1.0, 0.0), C64::new(0.0, 2.0)]);
        assert_eq!(d.diag(), vec![C64::new(1.0, 0.0), C64::new(0.0, 2.0)]);
        assert_eq!(d[(0, 1)], C64::zero());
    }

    #[test]
    fn rvd_zero_for_identical() {
        let a = sample();
        assert_eq!(a.relative_variation_distance(&a, 1e-12), 0.0);
    }

    #[test]
    fn rvd_known_value() {
        let a = CMatrix::from_real_rows(&[&[2.0]]);
        let b = CMatrix::from_real_rows(&[&[1.0]]);
        // |2-1|/|1| = 1
        assert!((a.relative_variation_distance(&b, 1e-12) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn unitarity_check() {
        // Rotation-like complex matrix: [[c, s],[−s, c]] with a phase.
        let (c, s) = (0.6_f64, 0.8_f64);
        let m = CMatrix::from_fn(2, 2, |r, col| match (r, col) {
            (0, 0) => C64::new(c, 0.0),
            (0, 1) => C64::new(0.0, s),
            (1, 0) => C64::new(0.0, s),
            (1, 1) => C64::new(c, 0.0),
            _ => unreachable!(),
        });
        assert!(m.is_unitary(1e-12));
        assert!(!sample().is_unitary(1e-6));
    }

    #[test]
    fn add_sub_ops() {
        let a = sample();
        let b = CMatrix::identity(3);
        let c = &(&a + &b) - &b;
        assert!(c.approx_eq(&a, 1e-14));
        let n = -&a;
        assert!((&n + &a).approx_eq(&CMatrix::zeros(3, 3), 1e-14));
    }

    #[test]
    fn scale_ops() {
        let a = sample();
        let doubled = a.scale_real(2.0);
        assert!(doubled.approx_eq(&(&a + &a), 1e-14));
        let rotated = a.scale(C64::i());
        assert!(rotated[(0, 0)].approx_eq(C64::i() * a[(0, 0)], 1e-14));
    }

    #[test]
    fn debug_output_nonempty() {
        let s = format!("{:?}", sample());
        assert!(s.contains("CMatrix 3x3"));
    }
}
