//! Property-based tests for the linear-algebra kernels.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spnn_linalg::fft::{fft, fftshift, ifftshift, Direction};
use spnn_linalg::qr::qr;
use spnn_linalg::random::{gaussian_complex, haar_unitary};
use spnn_linalg::svd::svd;
use spnn_linalg::vector::{dot, norm, norm_sq};
use spnn_linalg::{CMatrix, C64};

fn random_matrix(rows: usize, cols: usize, seed: u64) -> CMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    CMatrix::from_fn(rows, cols, |_, _| gaussian_complex(&mut rng))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_is_associative(seed in 0u64..300, n in 2usize..6) {
        let a = random_matrix(n, n, seed);
        let b = random_matrix(n, n, seed ^ 1);
        let c = random_matrix(n, n, seed ^ 2);
        let left = a.mul(&b).mul(&c);
        let right = a.mul(&b.mul(&c));
        prop_assert!(left.approx_eq(&right, 1e-8));
    }

    #[test]
    fn matmul_distributes_over_addition(seed in 0u64..300, n in 2usize..6) {
        let a = random_matrix(n, n, seed);
        let b = random_matrix(n, n, seed ^ 3);
        let c = random_matrix(n, n, seed ^ 4);
        let lhs = a.mul(&(&b + &c));
        let rhs = &a.mul(&b) + &a.mul(&c);
        prop_assert!(lhs.approx_eq(&rhs, 1e-8));
    }

    #[test]
    fn adjoint_reverses_products(seed in 0u64..300, m in 2usize..5, k in 2usize..5, n in 2usize..5) {
        let a = random_matrix(m, k, seed);
        let b = random_matrix(k, n, seed ^ 5);
        let lhs = a.mul(&b).adjoint();
        let rhs = b.adjoint().mul(&a.adjoint());
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn frobenius_norm_is_unitarily_invariant(seed in 0u64..300, n in 2usize..6) {
        let a = random_matrix(n, n, seed);
        let u = haar_unitary(n, &mut StdRng::seed_from_u64(seed ^ 6));
        let rotated = u.mul(&a);
        prop_assert!((a.frobenius_norm() - rotated.frobenius_norm()).abs() < 1e-9);
    }

    #[test]
    fn unitary_preserves_inner_products(seed in 0u64..300, n in 2usize..6) {
        let u = haar_unitary(n, &mut StdRng::seed_from_u64(seed));
        let mut rng = StdRng::seed_from_u64(seed ^ 7);
        let x: Vec<C64> = (0..n).map(|_| gaussian_complex(&mut rng)).collect();
        let y: Vec<C64> = (0..n).map(|_| gaussian_complex(&mut rng)).collect();
        let ux = u.mul_vec(&x);
        let uy = u.mul_vec(&y);
        prop_assert!(dot(&x, &y).approx_eq(dot(&ux, &uy), 1e-9));
        prop_assert!((norm(&x) - norm(&ux)).abs() < 1e-9);
    }

    #[test]
    fn qr_factors_correctly(seed in 0u64..300, m in 1usize..7, n in 1usize..7) {
        let a = random_matrix(m, n, seed);
        let f = qr(&a).unwrap();
        prop_assert!(f.q.is_unitary(1e-9));
        prop_assert!(f.q.mul(&f.r).approx_eq(&a, 1e-9));
        for i in 0..m {
            for j in 0..i.min(n) {
                prop_assert_eq!(f.r[(i, j)], C64::zero());
            }
        }
    }

    #[test]
    fn svd_spectral_norm_bounds_matvec(seed in 0u64..200, n in 2usize..6) {
        // ‖A·x‖ ≤ s_max·‖x‖ with equality for the top singular vector.
        let a = random_matrix(n, n, seed);
        let f = svd(&a).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 8);
        let x: Vec<C64> = (0..n).map(|_| gaussian_complex(&mut rng)).collect();
        let ax = a.mul_vec(&x);
        prop_assert!(norm(&ax) <= f.spectral_norm() * norm(&x) + 1e-9);
    }

    #[test]
    fn parseval_holds_for_all_lengths(n in 1usize..48, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<C64> = (0..n).map(|_| gaussian_complex(&mut rng)).collect();
        let y = fft(&x, Direction::Forward);
        let ex = norm_sq(&x);
        let ey = norm_sq(&y) / n as f64;
        prop_assert!((ex - ey).abs() < 1e-8 * ex.max(1.0));
    }

    #[test]
    fn fftshift_roundtrips(rows in 1usize..12, cols in 1usize..12, seed in 0u64..100) {
        let m = random_matrix(rows, cols, seed);
        prop_assert!(ifftshift(&fftshift(&m)).approx_eq(&m, 0.0));
        // fftshift is a permutation: energy preserved.
        prop_assert!((fftshift(&m).frobenius_norm() - m.frobenius_norm()).abs() < 1e-12);
    }

    #[test]
    fn haar_unitary_determinant_modulus_one(n in 1usize..6, seed in 0u64..200) {
        // |det U| = 1 via the product of QR diagonal moduli.
        let u = haar_unitary(n, &mut StdRng::seed_from_u64(seed));
        let f = qr(&u).unwrap();
        let det_mod: f64 = (0..n).map(|i| f.r[(i, i)].abs()).product();
        prop_assert!((det_mod - 1.0).abs() < 1e-8);
    }
}
