//! EXP 2 — global uncertainties with zonal perturbations (paper §III-D,
//! Fig. 5).
//!
//! "We divide the SPNN into different zones, each consisting of four MZIs
//! arranged in a 2×2 grid. We insert random perturbations with
//! σ_PhS = σ_BeS = 0.1 in a selected zone while the remaining zones have
//! uncertainties with σ_PhS = σ_BeS = 0.05. For each selected zone we …
//! calculate the reduction in the mean inferencing accuracy from the
//! nominal case." Σ is error-free with singular values in random order.
//!
//! One [`Exp2Heatmap`] per unitary multiplier reproduces one panel of
//! Fig. 5 (six panels for the paper's three-layer network).

use crate::monte_carlo::{mc_accuracy, McResult};
use crate::network::PhotonicNetwork;
use crate::perturbation::{HardwareEffects, PerturbationPlan, Stage};
use spnn_linalg::C64;
use spnn_photonics::UncertaintySpec;

/// Configuration for the zonal experiment.
#[derive(Debug, Clone)]
pub struct Exp2Config {
    /// Baseline σ outside the selected zone (paper: 0.05).
    pub base_sigma: f64,
    /// Elevated σ inside the selected zone (paper: 0.1).
    pub hot_sigma: f64,
    /// Monte-Carlo iterations per zone (paper: 1000).
    pub iterations: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for Exp2Config {
    fn default() -> Self {
        Self {
            base_sigma: 0.05,
            hot_sigma: 0.1,
            iterations: 40,
            seed: 0xEB2,
        }
    }
}

/// A per-zone accuracy-loss heat map for one unitary multiplier — one panel
/// of Fig. 5.
#[derive(Debug, Clone)]
pub struct Exp2Heatmap {
    /// Layer index of the multiplier.
    pub layer: usize,
    /// Which multiplier (`UMesh` or `VMesh`).
    pub stage: Stage,
    /// Nominal (uncertainty-free) accuracy used as the loss reference.
    pub nominal_accuracy: f64,
    /// `loss_percent[zr][zc]` = accuracy loss in percentage points when zone
    /// `(zr, zc)` is hot.
    pub loss_percent: Vec<Vec<f64>>,
    /// Full Monte-Carlo results per zone (same layout as `loss_percent`).
    pub results: Vec<Vec<McResult>>,
}

impl Exp2Heatmap {
    /// Grid shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (
            self.loss_percent.len(),
            self.loss_percent.first().map_or(0, |r| r.len()),
        )
    }

    /// Minimum and maximum loss over all zones — the paper's observation is
    /// that these differ noticeably (low-/high-impact zones).
    pub fn loss_range(&self) -> (f64, f64) {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for row in &self.loss_percent {
            for &v in row {
                min = min.min(v);
                max = max.max(v);
            }
        }
        (min, max)
    }
}

/// Runs EXP 2 for one unitary multiplier (one Fig. 5 panel).
///
/// # Panics
///
/// Panics if `stage` is [`Stage::Sigma`] (the paper holds Σ error-free) or
/// `layer` is out of range.
pub fn run_one(
    network: &PhotonicNetwork,
    features: &[Vec<C64>],
    labels: &[usize],
    layer: usize,
    stage: Stage,
    config: &Exp2Config,
) -> Exp2Heatmap {
    assert!(
        stage != Stage::Sigma,
        "EXP 2 targets unitary multipliers only"
    );
    assert!(layer < network.n_layers(), "layer out of range");

    let zones = match stage {
        Stage::UMesh => network.layers()[layer].u_zones(),
        Stage::VMesh => network.layers()[layer].v_zones(),
        Stage::Sigma => unreachable!(),
    };
    let (rows, cols) = (zones.rows(), zones.cols());
    let nominal_accuracy = network.ideal_accuracy(features, labels);
    let effects = HardwareEffects::default();

    let mut results: Vec<Vec<McResult>> = Vec::with_capacity(rows);
    let mut loss: Vec<Vec<f64>> = Vec::with_capacity(rows);
    for zr in 0..rows {
        let mut res_row = Vec::with_capacity(cols);
        let mut loss_row = Vec::with_capacity(cols);
        for zc in 0..cols {
            let plan = PerturbationPlan::Zonal {
                base: UncertaintySpec::both(config.base_sigma),
                hot: UncertaintySpec::both(config.hot_sigma),
                layer,
                stage,
                zone: (zr, zc),
            };
            let seed = config.seed
                ^ ((layer as u64) << 40)
                ^ ((stage_tag(stage)) << 32)
                ^ ((zr as u64) << 16)
                ^ (zc as u64);
            let r = mc_accuracy(
                network,
                &plan,
                &effects,
                features,
                labels,
                config.iterations,
                seed,
            );
            loss_row.push((nominal_accuracy - r.mean) * 100.0);
            res_row.push(r);
        }
        results.push(res_row);
        loss.push(loss_row);
    }

    Exp2Heatmap {
        layer,
        stage,
        nominal_accuracy,
        loss_percent: loss,
        results,
    }
}

/// Runs EXP 2 for every unitary multiplier of the network: panels
/// (a)–(f) of Fig. 5 for a three-layer network, ordered
/// `U_L0, Vᴴ_L0, U_L1, Vᴴ_L1, …`.
pub fn run_all(
    network: &PhotonicNetwork,
    features: &[Vec<C64>],
    labels: &[usize],
    config: &Exp2Config,
) -> Vec<Exp2Heatmap> {
    let mut out = Vec::with_capacity(2 * network.n_layers());
    for layer in 0..network.n_layers() {
        out.push(run_one(
            network,
            features,
            labels,
            layer,
            Stage::UMesh,
            config,
        ));
        out.push(run_one(
            network,
            features,
            labels,
            layer,
            Stage::VMesh,
            config,
        ));
    }
    out
}

fn stage_tag(stage: Stage) -> u64 {
    match stage {
        Stage::VMesh => 1,
        Stage::Sigma => 2,
        Stage::UMesh => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::MeshTopology;
    use spnn_neural::ComplexNetwork;

    fn setup() -> (PhotonicNetwork, Vec<Vec<C64>>, Vec<usize>) {
        let sw = ComplexNetwork::new(&[5, 4, 3], 51);
        let hw = PhotonicNetwork::from_network(&sw, MeshTopology::Clements, Some(7)).unwrap();
        let features: Vec<Vec<C64>> = (0..8)
            .map(|i| {
                (0..5)
                    .map(|j| {
                        C64::new(
                            ((2 * i + j) % 5) as f64 * 0.2,
                            ((i + 2 * j) % 4) as f64 * 0.15,
                        )
                    })
                    .collect()
            })
            .collect();
        let ideal = hw.ideal_matrices();
        let labels: Vec<usize> = features
            .iter()
            .map(|f| hw.classify_with(&ideal, f))
            .collect();
        (hw, features, labels)
    }

    #[test]
    fn heatmap_shape_matches_zone_grid() {
        let (hw, xs, ys) = setup();
        let cfg = Exp2Config {
            iterations: 3,
            ..Exp2Config::default()
        };
        let hm = run_one(&hw, &xs, &ys, 0, Stage::VMesh, &cfg);
        let zones = hw.layers()[0].v_zones();
        assert_eq!(hm.shape(), (zones.rows(), zones.cols()));
        assert!((hm.nominal_accuracy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn losses_are_bounded_percentages() {
        let (hw, xs, ys) = setup();
        let cfg = Exp2Config {
            iterations: 4,
            ..Exp2Config::default()
        };
        let hm = run_one(&hw, &xs, &ys, 1, Stage::UMesh, &cfg);
        for row in &hm.loss_percent {
            for &v in row {
                assert!((-0.01..=100.01).contains(&v), "loss {v} out of range");
            }
        }
        let (lo, hi) = hm.loss_range();
        assert!(lo <= hi);
    }

    #[test]
    fn run_all_produces_two_panels_per_layer() {
        let (hw, xs, ys) = setup();
        let cfg = Exp2Config {
            iterations: 2,
            ..Exp2Config::default()
        };
        let panels = run_all(&hw, &xs, &ys, &cfg);
        assert_eq!(panels.len(), 4); // 2 layers × 2 multipliers
        assert_eq!(panels[0].stage, Stage::UMesh);
        assert_eq!(panels[1].stage, Stage::VMesh);
        assert_eq!(panels[2].layer, 1);
    }

    #[test]
    #[should_panic(expected = "unitary multipliers")]
    fn sigma_stage_rejected() {
        let (hw, xs, ys) = setup();
        let _ = run_one(&hw, &xs, &ys, 0, Stage::Sigma, &Exp2Config::default());
    }
}
