//! EXP 1 — global uncertainties (paper §III-D, Fig. 4).
//!
//! "We select a σ_PhS and σ_BeS and for each selected value, perform 1000
//! Monte Carlo iterations. … EXP 1 is performed with uncertainties inserted
//! only in PhS, only in BeS, and in both where σ_PhS = σ_BeS."
//!
//! The runner sweeps σ over the paper's range for all three targeting modes
//! and returns one [`McResult`] per `(σ, mode)` point — the three curves of
//! Fig. 4.

use crate::monte_carlo::{mc_accuracy, McResult};
use crate::network::PhotonicNetwork;
use crate::perturbation::{HardwareEffects, PerturbationPlan};
use spnn_linalg::C64;
use spnn_photonics::{PerturbTarget, UncertaintySpec};

/// The σ grid of Fig. 4 (normalized units, see
/// [`UncertaintySpec`]): 0 to 0.15.
pub const PAPER_SIGMAS: [f64; 9] = [0.0, 0.005, 0.01, 0.025, 0.05, 0.075, 0.1, 0.125, 0.15];

/// One point of the EXP 1 sweep.
#[derive(Debug, Clone)]
pub struct Exp1Point {
    /// The normalized σ of this point.
    pub sigma: f64,
    /// Which component class was perturbed.
    pub mode: PerturbTarget,
    /// Monte-Carlo accuracy estimate.
    pub result: McResult,
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct Exp1Config {
    /// σ values to sweep (defaults to [`PAPER_SIGMAS`]).
    pub sigmas: Vec<f64>,
    /// Monte-Carlo iterations per point (paper: 1000).
    pub iterations: usize,
    /// Base seed.
    pub seed: u64,
    /// Targeting modes to run (defaults to all three of the paper).
    pub modes: Vec<PerturbTarget>,
}

impl Default for Exp1Config {
    fn default() -> Self {
        Self {
            sigmas: PAPER_SIGMAS.to_vec(),
            iterations: 60,
            seed: 0xEB1,
            modes: vec![
                PerturbTarget::PhaseShiftersOnly,
                PerturbTarget::BeamSplittersOnly,
                PerturbTarget::Both,
            ],
        }
    }
}

/// Builds the [`UncertaintySpec`] for a mode at a given σ.
pub fn spec_for_mode(mode: PerturbTarget, sigma: f64) -> UncertaintySpec {
    match mode {
        PerturbTarget::PhaseShiftersOnly => UncertaintySpec::phase_shifters_only(sigma),
        PerturbTarget::BeamSplittersOnly => UncertaintySpec::beam_splitters_only(sigma),
        PerturbTarget::Both => UncertaintySpec::both(sigma),
    }
}

/// Runs the EXP 1 sweep. Uncertainties cover every MZI including the Σ
/// lines (all 1374 PhS of the paper's network are tunable-thermal devices).
pub fn run(
    network: &PhotonicNetwork,
    features: &[Vec<C64>],
    labels: &[usize],
    config: &Exp1Config,
) -> Vec<Exp1Point> {
    let effects = HardwareEffects::default();
    let mut out = Vec::with_capacity(config.sigmas.len() * config.modes.len());
    for &mode in &config.modes {
        for (si, &sigma) in config.sigmas.iter().enumerate() {
            let plan = if sigma == 0.0 {
                PerturbationPlan::None
            } else {
                PerturbationPlan::global(spec_for_mode(mode, sigma))
            };
            // Distinct seed per point, stable across config extensions.
            let seed = config.seed ^ ((si as u64) << 8) ^ (mode_tag(mode) << 32);
            let result = mc_accuracy(
                network,
                &plan,
                &effects,
                features,
                labels,
                config.iterations,
                seed,
            );
            out.push(Exp1Point {
                sigma,
                mode,
                result,
            });
        }
    }
    out
}

fn mode_tag(mode: PerturbTarget) -> u64 {
    match mode {
        PerturbTarget::PhaseShiftersOnly => 1,
        PerturbTarget::BeamSplittersOnly => 2,
        PerturbTarget::Both => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::MeshTopology;
    use spnn_neural::ComplexNetwork;

    fn setup() -> (PhotonicNetwork, Vec<Vec<C64>>, Vec<usize>) {
        let sw = ComplexNetwork::new(&[4, 4, 3], 41);
        let hw = PhotonicNetwork::from_network(&sw, MeshTopology::Clements, None).unwrap();
        let features: Vec<Vec<C64>> = (0..10)
            .map(|i| {
                (0..4)
                    .map(|j| C64::new(((i + j) % 4) as f64 * 0.25, ((i * j) % 3) as f64 * 0.2))
                    .collect()
            })
            .collect();
        let ideal = hw.ideal_matrices();
        let labels: Vec<usize> = features
            .iter()
            .map(|f| hw.classify_with(&ideal, f))
            .collect();
        (hw, features, labels)
    }

    #[test]
    fn sweep_shape_and_nominal_point() {
        let (hw, xs, ys) = setup();
        let cfg = Exp1Config {
            sigmas: vec![0.0, 0.05, 0.15],
            iterations: 5,
            seed: 1,
            modes: vec![PerturbTarget::Both],
        };
        let points = run(&hw, &xs, &ys, &cfg);
        assert_eq!(points.len(), 3);
        // σ = 0 keeps nominal accuracy (labels were defined by the ideal net).
        assert!((points[0].result.mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_trends_downward_with_sigma() {
        let (hw, xs, ys) = setup();
        let cfg = Exp1Config {
            sigmas: vec![0.0, 0.15],
            iterations: 12,
            seed: 2,
            modes: vec![PerturbTarget::Both],
        };
        let points = run(&hw, &xs, &ys, &cfg);
        assert!(
            points[1].result.mean < points[0].result.mean,
            "σ=0.15 ({}) should hurt vs σ=0 ({})",
            points[1].result.mean,
            points[0].result.mean
        );
    }

    #[test]
    fn all_three_modes_run() {
        let (hw, xs, ys) = setup();
        let cfg = Exp1Config {
            sigmas: vec![0.05],
            iterations: 3,
            seed: 3,
            modes: Exp1Config::default().modes,
        };
        let points = run(&hw, &xs, &ys, &cfg);
        assert_eq!(points.len(), 3);
        let modes: Vec<PerturbTarget> = points.iter().map(|p| p.mode).collect();
        assert!(modes.contains(&PerturbTarget::PhaseShiftersOnly));
        assert!(modes.contains(&PerturbTarget::BeamSplittersOnly));
        assert!(modes.contains(&PerturbTarget::Both));
    }

    #[test]
    fn paper_sigma_grid_is_sorted_and_bounded() {
        assert_eq!(PAPER_SIGMAS[0], 0.0);
        assert_eq!(*PAPER_SIGMAS.last().unwrap(), 0.15);
        for w in PAPER_SIGMAS.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
