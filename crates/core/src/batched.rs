//! The batched forward path: whole-test-set accuracy as tiled
//! split-plane matrix products, bit-identical to the per-sample loop.
//!
//! The seed repository evaluated every Monte-Carlo iteration by pushing
//! test samples through the realized layer matrices *one vector at a time*
//! (`CMatrix::mul_vec` per sample per layer). For the paper's 16-16-16-10
//! network and 1000 test images that is 3000 tiny matrix-vector products
//! and ~9000 short-lived allocations per iteration.
//!
//! [`TestBatch`] packs the test set once into split-plane (structure-of-
//! arrays) `d × n` real/imaginary matrices and pushes the whole batch
//! through each realized layer as matrix-matrix products over the planes.
//! Per output element the floating-point operation sequence is exactly the
//! per-sample one — `t₁ = aᵣxᵣ`, `t₂ = aᵢxᵢ`, `acc += t₁ − t₂` in
//! ascending-`k` order, matching `C64` multiplication inside
//! `CMatrix::mul_vec` — so the batched per-iteration accuracies match the
//! per-sample reference to the last bit. The split-plane layout is what
//! buys the speed: the inner loops run over contiguous `f64` rows with
//! independent lanes, which LLVM vectorizes, and the Softplus activation
//! sweeps whole planes instead of tiny per-sample vectors.
//!
//! This type started life in `spnn-engine` and moved down into `spnn-core`
//! so that [`crate::monte_carlo::mc_accuracy`] itself can run batched by
//! default; the engine re-exports it unchanged.

use crate::kernel::{activate_tile_fma, matmul_tile_fma, KernelProfile};
use crate::network::PhotonicNetwork;
use spnn_linalg::{CMatrix, C64};
use spnn_neural::activation::softplus;
use spnn_neural::loss::argmax;

/// Samples processed per column tile — sized so one tile of activations
/// (two `f64` planes of ≤ 16 rows) plus its output stays within L1.
const TILE: usize = 64;

/// Register-block width of the matmul micro-kernel: two AVX-512 vectors /
/// four AVX2 vectors of `f64`. Fixed-size array lanes let LLVM keep the
/// accumulators in vector registers across the whole `k` loop.
const BLOCK: usize = 32;

/// One layer's `Z = M · A` over a column tile of width `w` (row stride
/// `w` in all planes), register-blocked in chunks of [`BLOCK`] columns.
///
/// For every output element the operation sequence is exactly
/// `CMatrix::mul_vec`'s: `t₁ = aᵣxᵣ`, `t₂ = aᵢxᵢ`, `acc += t₁ − t₂`
/// (and the imaginary twin) in ascending-`k` order — blocking only
/// changes *which* independent elements advance together, never the
/// per-element rounding. With `real_input` the `x.im = +0` products are
/// skipped; see [`TestBatch::accuracy_with`] for why that is exact.
#[allow(clippy::too_many_arguments)]
fn matmul_tile(
    m: &CMatrix,
    a_re: &[f64],
    a_im: &[f64],
    z_re: &mut [f64],
    z_im: &mut [f64],
    w: usize,
    real_input: bool,
) {
    let out_rows = z_re.len() / w;
    for i in 0..out_rows {
        let mut jb = 0usize;
        // Full BLOCK-wide column chunks: accumulators live in registers
        // across the whole k loop, stores happen once per chunk.
        while jb + BLOCK <= w {
            let mut acc_re = [0.0f64; BLOCK];
            let mut acc_im = [0.0f64; BLOCK];
            for (k, &a) in m.row(i).iter().enumerate() {
                let x_re: &[f64; BLOCK] = a_re[k * w + jb..k * w + jb + BLOCK].try_into().unwrap();
                if real_input {
                    for l in 0..BLOCK {
                        acc_re[l] += a.re * x_re[l];
                    }
                    for l in 0..BLOCK {
                        acc_im[l] += a.im * x_re[l];
                    }
                } else {
                    let x_im: &[f64; BLOCK] =
                        a_im[k * w + jb..k * w + jb + BLOCK].try_into().unwrap();
                    for l in 0..BLOCK {
                        let t1 = a.re * x_re[l];
                        let t2 = a.im * x_im[l];
                        acc_re[l] += t1 - t2;
                    }
                    for l in 0..BLOCK {
                        let t3 = a.re * x_im[l];
                        let t4 = a.im * x_re[l];
                        acc_im[l] += t3 + t4;
                    }
                }
            }
            z_re[i * w + jb..i * w + jb + BLOCK].copy_from_slice(&acc_re);
            z_im[i * w + jb..i * w + jb + BLOCK].copy_from_slice(&acc_im);
            jb += BLOCK;
        }
        // Scalar tail for the last partial chunk (same op order).
        for j in jb..w {
            let mut acc_re = 0.0f64;
            let mut acc_im = 0.0f64;
            for (k, &a) in m.row(i).iter().enumerate() {
                let xr = a_re[k * w + j];
                if real_input {
                    acc_re += a.re * xr;
                    acc_im += a.im * xr;
                } else {
                    let xi = a_im[k * w + j];
                    let t1 = a.re * xr;
                    let t2 = a.im * xi;
                    acc_re += t1 - t2;
                    let t3 = a.re * xi;
                    let t4 = a.im * xr;
                    acc_im += t3 + t4;
                }
            }
            z_re[i * w + j] = acc_re;
            z_im[i * w + j] = acc_im;
        }
    }
}

/// Softplus-on-modulus over a whole tile. A flat two-stream zip is the
/// shape LLVM's loop vectorizer handles for the (branchless) polynomial
/// softplus body — chunked nests defeat it. Identical scalar ops per
/// element to `mod_softplus`.
fn activate_tile(z_re: &mut [f64], z_im: &mut [f64]) {
    for (r, i_) in z_re.iter_mut().zip(z_im.iter_mut()) {
        let s1 = *r * *r;
        let s2 = *i_ * *i_;
        *r = softplus((s1 + s2).sqrt());
        *i_ = 0.0;
    }
}

/// Reusable plane scratch for [`TestBatch::accuracy_with_profile`].
///
/// The batched forward needs four `max_rows × TILE` activation planes plus
/// an intensity vector per evaluation. Allocating them per Monte-Carlo
/// iteration is pure overhead — the Monte-Carlo hot loop keeps one
/// `BatchScratch` per worker thread and reuses it across iterations.
/// Buffers grow on demand and never shrink; stale contents are harmless
/// because every read is preceded by a full write of the region read
/// (input planes are staged per tile, output planes are fully written by
/// the matmul, intensities are overwritten per column).
#[derive(Debug, Default, Clone)]
pub struct BatchScratch {
    a_re: Vec<f64>,
    a_im: Vec<f64>,
    z_re: Vec<f64>,
    z_im: Vec<f64>,
    intensities: Vec<f64>,
}

/// A labelled test set packed for batched evaluation.
///
/// # Example
///
/// ```
/// use spnn_core::{PhotonicNetwork, MeshTopology, TestBatch};
/// use spnn_neural::ComplexNetwork;
/// use spnn_linalg::C64;
///
/// let sw = ComplexNetwork::new(&[4, 4, 3], 11);
/// let hw = PhotonicNetwork::from_network(&sw, MeshTopology::Clements, None)?;
/// let features = vec![vec![C64::one(); 4], vec![C64::i(); 4]];
/// let ideal = hw.ideal_matrices();
/// let labels: Vec<usize> = features.iter().map(|f| hw.classify_with(&ideal, f)).collect();
///
/// let batch = TestBatch::new(&features, &labels);
/// // Bit-identical to the per-sample path, several times faster:
/// assert_eq!(
///     batch.accuracy_with(&hw, &ideal).to_bits(),
///     hw.accuracy_with(&ideal, &features, &labels).to_bits(),
/// );
/// # Ok::<(), spnn_core::network::SpnnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TestBatch {
    /// Row-major `dim × n` plane of feature real parts.
    x_re: Vec<f64>,
    /// Row-major `dim × n` plane of feature imaginary parts.
    x_im: Vec<f64>,
    dim: usize,
    labels: Vec<usize>,
}

impl TestBatch {
    /// Packs feature vectors into the columns of split `d × n` planes.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty, lengths mismatch, or features are ragged.
    pub fn new(features: &[Vec<C64>], labels: &[usize]) -> Self {
        assert!(!features.is_empty(), "test set must be non-empty");
        assert_eq!(features.len(), labels.len(), "features/labels mismatch");
        let dim = features[0].len();
        assert!(dim > 0, "features must be non-empty vectors");
        let n = features.len();
        let mut x_re = vec![0.0f64; dim * n];
        let mut x_im = vec![0.0f64; dim * n];
        for (j, f) in features.iter().enumerate() {
            assert_eq!(f.len(), dim, "ragged feature vectors");
            for (r, v) in f.iter().enumerate() {
                x_re[r * n + j] = v.re;
                x_im[r * n + j] = v.im;
            }
        }
        Self {
            x_re,
            x_im,
            dim,
            labels: labels.to_vec(),
        }
    }

    /// Number of test samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the batch holds no samples (impossible by construction,
    /// kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The ground-truth labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Classification accuracy of `network` through explicit (realized or
    /// ideal) layer matrices, evaluated with split-plane matrix-matrix
    /// products over column tiles. Bit-identical to
    /// `network.accuracy_with(matrices, features, labels)`.
    ///
    /// Two structural optimizations keep this several times faster than
    /// the per-sample loop without changing any result:
    ///
    /// - **Column tiling** (`TILE` samples at a time): every buffer the
    ///   inner loops touch stays L1-resident instead of streaming
    ///   `16 × n`-element planes from L2 per accumulation row.
    /// - **Real hidden activations**: after Softplus-on-modulus the
    ///   imaginary plane is exactly `+0.0`, so later layers use the
    ///   half-cost real-input kernel. Skipping `a.im·0` products can flip
    ///   the *sign* of a zero relative to the per-sample path, but zero
    ///   signs provably never reach the output: every value differs at
    ///   most in the sign of a zero, magnitudes and all comparisons are
    ///   zero-sign-blind, and the final intensities square them away
    ///   (`(−0)² = +0 = (+0)²`), so intensities — and therefore argmax
    ///   and accuracy — are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `matrices.len() != network.n_layers()` or dimensions
    /// mismatch.
    pub fn accuracy_with(&self, network: &PhotonicNetwork, matrices: &[CMatrix]) -> f64 {
        self.accuracy_with_profile(
            network,
            matrices,
            KernelProfile::Reference,
            &mut BatchScratch::default(),
        )
    }

    /// [`TestBatch::accuracy_with`] with an explicit [`KernelProfile`] and
    /// caller-owned [`BatchScratch`].
    ///
    /// Under [`KernelProfile::Reference`] this is bit-identical to
    /// `accuracy_with` (which simply wraps it with fresh scratch). Under
    /// [`KernelProfile::Fma`] the matmul micro-kernel and the softplus
    /// plane sweep run on fused multiply-adds (see [`crate::kernel`]) —
    /// equally deterministic and machine-independent, but under the Fma
    /// profile's own golden outputs. The intensity/argmax readout is
    /// shared between profiles.
    ///
    /// # Panics
    ///
    /// Panics if `matrices.len() != network.n_layers()` or dimensions
    /// mismatch.
    pub fn accuracy_with_profile(
        &self,
        network: &PhotonicNetwork,
        matrices: &[CMatrix],
        profile: KernelProfile,
        scratch: &mut BatchScratch,
    ) -> f64 {
        assert_eq!(matrices.len(), network.n_layers(), "layer count mismatch");
        let n = self.labels.len();
        let last = matrices.len() - 1;
        for (l, m) in matrices.iter().enumerate() {
            let expect = if l == 0 {
                self.dim
            } else {
                matrices[l - 1].rows()
            };
            assert_eq!(m.cols(), expect, "layer {l} dimension mismatch");
        }
        let max_rows = matrices
            .iter()
            .map(|m| m.rows())
            .max()
            .unwrap()
            .max(self.dim);

        let BatchScratch {
            a_re,
            a_im,
            z_re,
            z_im,
            intensities,
        } = scratch;
        let plane = max_rows * TILE;
        if a_re.len() < plane {
            a_re.resize(plane, 0.0);
            a_im.resize(plane, 0.0);
            z_re.resize(plane, 0.0);
            z_im.resize(plane, 0.0);
        }
        // argmax runs over the whole slice, so the length must be exact.
        intensities.clear();
        intensities.resize(matrices[last].rows(), 0.0);
        let mut correct = 0usize;

        let mut t0 = 0usize;
        while t0 < n {
            let w = TILE.min(n - t0);
            // Stage the input tile (row stride `w`).
            for k in 0..self.dim {
                a_re[k * w..(k + 1) * w].copy_from_slice(&self.x_re[k * n + t0..k * n + t0 + w]);
                a_im[k * w..(k + 1) * w].copy_from_slice(&self.x_im[k * n + t0..k * n + t0 + w]);
            }
            let mut input_real = false;
            let mut rows = self.dim;

            for (l, m) in matrices.iter().enumerate() {
                let out_rows = m.rows();
                match profile {
                    KernelProfile::Reference => matmul_tile(
                        m,
                        &a_re[..rows * w],
                        &a_im[..rows * w],
                        &mut z_re[..out_rows * w],
                        &mut z_im[..out_rows * w],
                        w,
                        input_real,
                    ),
                    KernelProfile::Fma => matmul_tile_fma(
                        m,
                        &a_re[..rows * w],
                        &a_im[..rows * w],
                        &mut z_re[..out_rows * w],
                        &mut z_im[..out_rows * w],
                        w,
                        input_real,
                    ),
                }
                if l < last {
                    // Softplus-on-modulus over the tile — the same scalar
                    // ops as `mod_softplus` per element: |z| = √(re² + im²),
                    // out = (softplus(|z|), 0).
                    match profile {
                        KernelProfile::Reference => {
                            activate_tile(&mut z_re[..out_rows * w], &mut z_im[..out_rows * w])
                        }
                        KernelProfile::Fma => {
                            activate_tile_fma(&mut z_re[..out_rows * w], &mut z_im[..out_rows * w])
                        }
                    }
                    input_real = true;
                }
                std::mem::swap(a_re, z_re);
                std::mem::swap(a_im, z_im);
                rows = out_rows;
            }

            // Photodetector intensities + argmax per tile column — shared
            // between profiles.
            for (jj, &label) in self.labels[t0..t0 + w].iter().enumerate() {
                for (i, slot) in intensities.iter_mut().enumerate() {
                    let re = a_re[i * w + jj];
                    let im = a_im[i * w + jj];
                    let s1 = re * re;
                    let s2 = im * im;
                    *slot = s1 + s2;
                }
                if argmax(intensities) == label {
                    correct += 1;
                }
            }
            t0 += w;
        }
        correct as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monte_carlo::iteration_rng;
    use crate::network::MeshTopology;
    use crate::perturbation::{HardwareEffects, PerturbationPlan};
    use spnn_neural::ComplexNetwork;
    use spnn_photonics::UncertaintySpec;

    fn setup() -> (PhotonicNetwork, Vec<Vec<C64>>, Vec<usize>) {
        let sw = ComplexNetwork::new(&[6, 5, 4], 77);
        let hw = PhotonicNetwork::from_network(&sw, MeshTopology::Clements, None).unwrap();
        let features: Vec<Vec<C64>> = (0..23)
            .map(|i| {
                (0..6)
                    .map(|j| {
                        C64::new(
                            ((i * 5 + j * 3) % 7) as f64 * 0.2 - 0.5,
                            ((i + 2 * j) % 5) as f64 * 0.15,
                        )
                    })
                    .collect()
            })
            .collect();
        let ideal = hw.ideal_matrices();
        let labels: Vec<usize> = features
            .iter()
            .map(|f| hw.classify_with(&ideal, f))
            .collect();
        (hw, features, labels)
    }

    #[test]
    fn batched_accuracy_equals_per_sample_on_ideal_matrices() {
        let (hw, xs, ys) = setup();
        let batch = TestBatch::new(&xs, &ys);
        let ideal = hw.ideal_matrices();
        let batched = batch.accuracy_with(&hw, &ideal);
        let reference = hw.accuracy_with(&ideal, &xs, &ys);
        assert_eq!(batched.to_bits(), reference.to_bits());
        assert_eq!(batched, 1.0, "labels were defined by the ideal network");
    }

    #[test]
    fn batched_accuracy_equals_per_sample_on_realized_matrices() {
        let (hw, xs, ys) = setup();
        let batch = TestBatch::new(&xs, &ys);
        let plan = PerturbationPlan::global(UncertaintySpec::both(0.08));
        let fx = HardwareEffects::default();
        for k in 0..16 {
            let matrices = hw.realize(&plan, &fx, &mut iteration_rng(33, k));
            let batched = batch.accuracy_with(&hw, &matrices);
            let reference = hw.accuracy_with(&matrices, &xs, &ys);
            assert_eq!(
                batched.to_bits(),
                reference.to_bits(),
                "iteration {k}: {batched} vs {reference}"
            );
        }
    }

    #[test]
    fn reused_scratch_is_bit_identical_to_fresh_scratch() {
        let (hw, xs, ys) = setup();
        let batch = TestBatch::new(&xs, &ys);
        let plan = PerturbationPlan::global(UncertaintySpec::both(0.08));
        let fx = HardwareEffects::default();
        for profile in [KernelProfile::Reference, KernelProfile::Fma] {
            let mut reused = BatchScratch::default();
            for k in 0..12 {
                let matrices = hw.realize(&plan, &fx, &mut iteration_rng(91, k));
                let warm = batch.accuracy_with_profile(&hw, &matrices, profile, &mut reused);
                let cold = batch.accuracy_with_profile(
                    &hw,
                    &matrices,
                    profile,
                    &mut BatchScratch::default(),
                );
                assert_eq!(
                    warm.to_bits(),
                    cold.to_bits(),
                    "iteration {k} ({profile}): scratch reuse changed the result"
                );
            }
        }
    }

    #[test]
    fn fma_profile_is_deterministic_and_statistically_close() {
        let (hw, xs, ys) = setup();
        let batch = TestBatch::new(&xs, &ys);
        let plan = PerturbationPlan::global(UncertaintySpec::both(0.08));
        let fx = HardwareEffects::default();
        let mut scratch = BatchScratch::default();
        let (mut sum_ref, mut sum_fma) = (0.0, 0.0);
        for k in 0..32 {
            let matrices = hw.realize(&plan, &fx, &mut iteration_rng(57, k));
            let f1 = batch.accuracy_with_profile(&hw, &matrices, KernelProfile::Fma, &mut scratch);
            let f2 = batch.accuracy_with_profile(&hw, &matrices, KernelProfile::Fma, &mut scratch);
            assert_eq!(f1.to_bits(), f2.to_bits(), "iteration {k}: fma not pure");
            sum_fma += f1;
            sum_ref += batch.accuracy_with(&hw, &matrices);
        }
        // Accuracies are coarse (23 samples), so per-iteration values agree
        // almost always and the means must be very close: the profiles
        // compute the same product up to last-bit rounding.
        assert!(
            (sum_ref - sum_fma).abs() / 32.0 <= 0.05,
            "profiles statistically diverged: ref mean {} vs fma mean {}",
            sum_ref / 32.0,
            sum_fma / 32.0
        );
    }

    #[test]
    fn batch_shape_accessors() {
        let (_, xs, ys) = setup();
        let batch = TestBatch::new(&xs, &ys);
        assert_eq!(batch.len(), 23);
        assert_eq!(batch.dim(), 6);
        assert!(!batch.is_empty());
        assert_eq!(batch.labels().len(), 23);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_batch_panics() {
        let _ = TestBatch::new(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_labels_panic() {
        let xs = vec![vec![C64::one(); 3]];
        let _ = TestBatch::new(&xs, &[0, 1]);
    }
}
