//! Kernel profiles: the opt-in FMA fast path and its runtime dispatch.
//!
//! The engine's batched forward ([`crate::batched`]) ships two kernel
//! profiles:
//!
//! - [`KernelProfile::Reference`] — the seed-faithful kernel: separate
//!   multiply and add per term, bit-identical to the per-sample
//!   `CMatrix::mul_vec` path. This is the default and its outputs are the
//!   repository's long-standing golden bytes.
//! - [`KernelProfile::Fma`] — every `a·b + c` on the matmul and softplus
//!   hot paths contracted through fused multiply-add. `f64::mul_add` is
//!   **correctly rounded** (IEEE 754 `fusedMultiplyAdd`: one rounding per
//!   fused step), so the profile is exactly as deterministic and
//!   machine-independent as the reference — it simply computes *different*
//!   (slightly more accurate) last bits, pinned under its own goldens.
//!
//! The Fma matmul micro-kernel is explicitly SIMD: an AVX-512F path
//! (8 lanes/vector), an AVX2+FMA path (4 lanes/vector) and a scalar
//! `f64::mul_add` fallback, selected **once per process** with
//! `is_x86_feature_detected!` ([`detected_tier`]). All three tiers apply
//! the identical per-element operation sequence — each output element
//! accumulates `fma(a.re, x.re, acc)` then `fnma(a.im, x.im, acc)` (and
//! the imaginary twin) in ascending-`k` order, with lanes fully
//! independent — so vector width cannot change a single bit and the
//! cross-tier equality is pinned by tests, not hoped for.
//!
//! Profile selection is an *execution-level* knob with *result-level*
//! consequences, which is why everything downstream scopes determinism by
//! profile: the queue fingerprint, row-cache keys, and partial reports all
//! carry the profile (see `spnn-engine`), so artifacts from different
//! profiles can never silently mix.

use spnn_linalg::CMatrix;
use spnn_neural::activation::softplus_fma;
use std::sync::OnceLock;

/// Which arithmetic the batched forward kernels use. See the module docs
/// for the determinism contract of each profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelProfile {
    /// Separate multiply/add, bit-identical to the per-sample reference
    /// path (the repository default since the seed).
    #[default]
    Reference,
    /// Fused multiply-add kernels (explicit SIMD with runtime dispatch,
    /// scalar `f64::mul_add` fallback) — deterministic under its own
    /// golden outputs.
    Fma,
}

impl KernelProfile {
    /// The canonical lowercase name (`reference` / `fma`) — the spelling
    /// used by the CLI flag, the `/shard` query parameter, fingerprints
    /// and partial reports.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelProfile::Reference => "reference",
            KernelProfile::Fma => "fma",
        }
    }

    /// Parses the canonical name; `None` for anything else.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "reference" => Some(KernelProfile::Reference),
            "fma" => Some(KernelProfile::Fma),
            _ => None,
        }
    }
}

impl std::fmt::Display for KernelProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for KernelProfile {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        KernelProfile::parse(s)
            .ok_or_else(|| format!("unknown kernel profile {s:?} (expected reference or fma)"))
    }
}

/// The SIMD tier the Fma profile dispatches to on this machine. Purely
/// informational for results (all tiers are bit-identical); advertised on
/// `GET /healthz` and by `spnn validate` so operators can see what a host
/// actually runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelTier {
    /// AVX-512F: 8 × f64 fused lanes per vector.
    Avx512,
    /// AVX2 + FMA: 4 × f64 fused lanes per vector.
    Avx2Fma,
    /// Scalar `f64::mul_add` (correctly rounded on every platform Rust
    /// supports; may lower to a libm call without hardware FMA).
    Scalar,
}

impl KernelTier {
    /// The canonical lowercase name (`avx512` / `avx2+fma` / `scalar`).
    pub fn as_str(self) -> &'static str {
        match self {
            KernelTier::Avx512 => "avx512",
            KernelTier::Avx2Fma => "avx2+fma",
            KernelTier::Scalar => "scalar",
        }
    }
}

impl std::fmt::Display for KernelTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The best SIMD tier this CPU supports, detected once per process.
pub fn detected_tier() -> KernelTier {
    static TIER: OnceLock<KernelTier> = OnceLock::new();
    *TIER.get_or_init(probe_tier)
}

#[cfg(target_arch = "x86_64")]
fn probe_tier() -> KernelTier {
    if std::arch::is_x86_feature_detected!("avx512f") {
        KernelTier::Avx512
    } else if std::arch::is_x86_feature_detected!("avx2")
        && std::arch::is_x86_feature_detected!("fma")
    {
        KernelTier::Avx2Fma
    } else {
        KernelTier::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn probe_tier() -> KernelTier {
    KernelTier::Scalar
}

/// Column-chunk width of the Fma micro-kernel: two AVX-512 vectors / four
/// AVX2 vectors of `f64`. Small enough that the per-chunk re/im
/// accumulators fit the vector register file on both tiers.
const FBLOCK: usize = 16;

/// One layer's `Z = M · A` over a column tile of width `w` (row stride `w`
/// in all planes) on fused multiply-adds — the Fma profile's twin of the
/// reference `matmul_tile`. Dispatches each full [`FBLOCK`] column chunk
/// to the detected SIMD tier; partial chunks run the scalar sequence.
///
/// Per output element, **every tier** applies the identical ascending-`k`
/// sequence — `acc_re = fma(a.re, x.re, acc_re)`, then (complex input)
/// `acc_re = fnma(a.im, x.im, acc_re)`, and the imaginary twin — so the
/// result is a pure function of the inputs, independent of vector width,
/// chunking, and machine.
#[allow(clippy::too_many_arguments)]
pub(crate) fn matmul_tile_fma(
    m: &CMatrix,
    a_re: &[f64],
    a_im: &[f64],
    z_re: &mut [f64],
    z_im: &mut [f64],
    w: usize,
    real_input: bool,
) {
    let tier = detected_tier();
    let out_rows = z_re.len() / w;
    for i in 0..out_rows {
        let row = m.row(i);
        let mut jb = 0usize;
        while jb + FBLOCK <= w {
            let zr = &mut z_re[i * w + jb..i * w + jb + FBLOCK];
            let zi = &mut z_im[i * w + jb..i * w + jb + FBLOCK];
            match tier {
                #[cfg(target_arch = "x86_64")]
                KernelTier::Avx512 => unsafe {
                    chunk_avx512(row, a_re, a_im, zr, zi, w, jb, real_input)
                },
                #[cfg(target_arch = "x86_64")]
                KernelTier::Avx2Fma => unsafe {
                    chunk_avx2(row, a_re, a_im, zr, zi, w, jb, real_input)
                },
                _ => chunk_scalar(row, a_re, a_im, zr, zi, w, jb, real_input),
            }
            jb += FBLOCK;
        }
        // Scalar tail for the last partial chunk (same op sequence).
        for j in jb..w {
            let mut acc_re = 0.0f64;
            let mut acc_im = 0.0f64;
            for (k, a) in row.iter().enumerate() {
                let xr = a_re[k * w + j];
                if real_input {
                    acc_re = a.re.mul_add(xr, acc_re);
                    acc_im = a.im.mul_add(xr, acc_im);
                } else {
                    let xi = a_im[k * w + j];
                    acc_re = a.re.mul_add(xr, acc_re);
                    acc_re = (-a.im).mul_add(xi, acc_re);
                    acc_im = a.im.mul_add(xr, acc_im);
                    acc_im = a.re.mul_add(xi, acc_im);
                }
            }
            z_re[i * w + j] = acc_re;
            z_im[i * w + j] = acc_im;
        }
    }
}

/// The scalar (and cross-tier reference) chunk: [`FBLOCK`] independent
/// accumulator lanes, `f64::mul_add` per term — the exact per-element
/// sequence the SIMD chunks vectorize.
#[allow(clippy::too_many_arguments)]
fn chunk_scalar(
    row: &[spnn_linalg::C64],
    a_re: &[f64],
    a_im: &[f64],
    z_re: &mut [f64],
    z_im: &mut [f64],
    w: usize,
    jb: usize,
    real_input: bool,
) {
    let mut acc_re = [0.0f64; FBLOCK];
    let mut acc_im = [0.0f64; FBLOCK];
    for (k, a) in row.iter().enumerate() {
        let base = k * w + jb;
        let xr: &[f64; FBLOCK] = a_re[base..base + FBLOCK].try_into().unwrap();
        if real_input {
            for l in 0..FBLOCK {
                acc_re[l] = a.re.mul_add(xr[l], acc_re[l]);
                acc_im[l] = a.im.mul_add(xr[l], acc_im[l]);
            }
        } else {
            let xi: &[f64; FBLOCK] = a_im[base..base + FBLOCK].try_into().unwrap();
            for l in 0..FBLOCK {
                acc_re[l] = a.re.mul_add(xr[l], acc_re[l]);
                acc_re[l] = (-a.im).mul_add(xi[l], acc_re[l]);
                acc_im[l] = a.im.mul_add(xr[l], acc_im[l]);
                acc_im[l] = a.re.mul_add(xi[l], acc_im[l]);
            }
        }
    }
    z_re.copy_from_slice(&acc_re);
    z_im.copy_from_slice(&acc_im);
}

/// AVX2+FMA chunk: four `__m256d` accumulator pairs covering the
/// [`FBLOCK`] lanes. `vfmadd`/`vfnmadd` apply exactly the scalar chunk's
/// per-lane sequence.
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2 and FMA (guaranteed by
/// [`detected_tier`] dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn chunk_avx2(
    row: &[spnn_linalg::C64],
    a_re: &[f64],
    a_im: &[f64],
    z_re: &mut [f64],
    z_im: &mut [f64],
    w: usize,
    jb: usize,
    real_input: bool,
) {
    use std::arch::x86_64::*;
    const L: usize = 4; // f64 lanes per __m256d
    let mut cr = [_mm256_setzero_pd(); FBLOCK / L];
    let mut ci = [_mm256_setzero_pd(); FBLOCK / L];
    for (k, a) in row.iter().enumerate() {
        let ar = _mm256_set1_pd(a.re);
        let ai = _mm256_set1_pd(a.im);
        let base = k * w + jb;
        debug_assert!(base + FBLOCK <= a_re.len());
        if real_input {
            for v in 0..FBLOCK / L {
                let x = _mm256_loadu_pd(a_re.as_ptr().add(base + v * L));
                cr[v] = _mm256_fmadd_pd(ar, x, cr[v]);
                ci[v] = _mm256_fmadd_pd(ai, x, ci[v]);
            }
        } else {
            for v in 0..FBLOCK / L {
                let xr = _mm256_loadu_pd(a_re.as_ptr().add(base + v * L));
                let xi = _mm256_loadu_pd(a_im.as_ptr().add(base + v * L));
                cr[v] = _mm256_fmadd_pd(ar, xr, cr[v]);
                cr[v] = _mm256_fnmadd_pd(ai, xi, cr[v]);
                ci[v] = _mm256_fmadd_pd(ai, xr, ci[v]);
                ci[v] = _mm256_fmadd_pd(ar, xi, ci[v]);
            }
        }
    }
    for v in 0..FBLOCK / L {
        _mm256_storeu_pd(z_re.as_mut_ptr().add(v * L), cr[v]);
        _mm256_storeu_pd(z_im.as_mut_ptr().add(v * L), ci[v]);
    }
}

/// AVX-512F chunk: two `__m512d` accumulator pairs covering the
/// [`FBLOCK`] lanes — the same per-lane sequence at twice the width.
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX-512F (guaranteed by
/// [`detected_tier`] dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn chunk_avx512(
    row: &[spnn_linalg::C64],
    a_re: &[f64],
    a_im: &[f64],
    z_re: &mut [f64],
    z_im: &mut [f64],
    w: usize,
    jb: usize,
    real_input: bool,
) {
    use std::arch::x86_64::*;
    const L: usize = 8; // f64 lanes per __m512d
    let mut cr = [_mm512_setzero_pd(); FBLOCK / L];
    let mut ci = [_mm512_setzero_pd(); FBLOCK / L];
    for (k, a) in row.iter().enumerate() {
        let ar = _mm512_set1_pd(a.re);
        let ai = _mm512_set1_pd(a.im);
        let base = k * w + jb;
        debug_assert!(base + FBLOCK <= a_re.len());
        if real_input {
            for v in 0..FBLOCK / L {
                let x = _mm512_loadu_pd(a_re.as_ptr().add(base + v * L));
                cr[v] = _mm512_fmadd_pd(ar, x, cr[v]);
                ci[v] = _mm512_fmadd_pd(ai, x, ci[v]);
            }
        } else {
            for v in 0..FBLOCK / L {
                let xr = _mm512_loadu_pd(a_re.as_ptr().add(base + v * L));
                let xi = _mm512_loadu_pd(a_im.as_ptr().add(base + v * L));
                cr[v] = _mm512_fmadd_pd(ar, xr, cr[v]);
                cr[v] = _mm512_fnmadd_pd(ai, xi, cr[v]);
                ci[v] = _mm512_fmadd_pd(ai, xr, ci[v]);
                ci[v] = _mm512_fmadd_pd(ar, xi, ci[v]);
            }
        }
    }
    for v in 0..FBLOCK / L {
        _mm512_storeu_pd(z_re.as_mut_ptr().add(v * L), cr[v]);
        _mm512_storeu_pd(z_im.as_mut_ptr().add(v * L), ci[v]);
    }
}

/// Softplus-on-modulus over a whole tile, fused: per element
/// `m = √(fma(re, re, im·im))`, then the mul_add softplus
/// ([`spnn_neural::activation::softplus_fma`]). The body is compiled
/// under `target_feature(fma)` on capable machines so `mul_add` lowers to
/// hardware `vfmadd` (and LLVM may vectorize the plane); the scalar
/// fallback runs the identical ops through `f64::mul_add`, so all paths
/// agree bit for bit.
pub(crate) fn activate_tile_fma(z_re: &mut [f64], z_im: &mut [f64]) {
    match detected_tier() {
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx512 if avx512_activation_available() => unsafe {
            spnn_neural::activation::fma_avx512::activate_planes(z_re, z_im)
        },
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx512 | KernelTier::Avx2Fma => unsafe { activate_fma_hw(z_re, z_im) },
        _ => activate_fma_body(z_re, z_im),
    }
}

/// The 512-bit activation sweep needs the DQ (vector `f64 ↔ i64`
/// conversions for the exponent bit-build) and VL subsets on top of
/// AVX-512F; probe them once. CPUs with F but not DQ/VL fall back to the
/// AVX2+FMA sweep — same bits either way.
#[cfg(target_arch = "x86_64")]
fn avx512_activation_available() -> bool {
    static OK: OnceLock<bool> = OnceLock::new();
    *OK.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx512vl")
    })
}

#[inline(always)]
fn activate_fma_body(z_re: &mut [f64], z_im: &mut [f64]) {
    for (r, i_) in z_re.iter_mut().zip(z_im.iter_mut()) {
        let s = r.mul_add(*r, *i_ * *i_);
        *r = softplus_fma(s.sqrt());
        *i_ = 0.0;
    }
}

/// # Safety
///
/// Caller must ensure the CPU supports FMA (guaranteed by
/// [`detected_tier`] dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn activate_fma_hw(z_re: &mut [f64], z_im: &mut [f64]) {
    activate_fma_body(z_re, z_im);
}

/// Runs the Fma matmul with an explicitly forced chunk implementation —
/// the cross-tier equality test hook. Not part of the public API surface.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn matmul_tile_fma_forced(
    tier: KernelTier,
    m: &CMatrix,
    a_re: &[f64],
    a_im: &[f64],
    z_re: &mut [f64],
    z_im: &mut [f64],
    w: usize,
    real_input: bool,
) {
    let out_rows = z_re.len() / w;
    for i in 0..out_rows {
        let row = m.row(i);
        let mut jb = 0usize;
        while jb + FBLOCK <= w {
            let zr = &mut z_re[i * w + jb..i * w + jb + FBLOCK];
            let zi = &mut z_im[i * w + jb..i * w + jb + FBLOCK];
            match tier {
                #[cfg(target_arch = "x86_64")]
                KernelTier::Avx512 => unsafe {
                    chunk_avx512(row, a_re, a_im, zr, zi, w, jb, real_input)
                },
                #[cfg(target_arch = "x86_64")]
                KernelTier::Avx2Fma => unsafe {
                    chunk_avx2(row, a_re, a_im, zr, zi, w, jb, real_input)
                },
                _ => chunk_scalar(row, a_re, a_im, zr, zi, w, jb, real_input),
            }
            jb += FBLOCK;
        }
        for j in jb..w {
            let mut acc_re = 0.0f64;
            let mut acc_im = 0.0f64;
            for (k, a) in row.iter().enumerate() {
                let xr = a_re[k * w + j];
                if real_input {
                    acc_re = a.re.mul_add(xr, acc_re);
                    acc_im = a.im.mul_add(xr, acc_im);
                } else {
                    let xi = a_im[k * w + j];
                    acc_re = a.re.mul_add(xr, acc_re);
                    acc_re = (-a.im).mul_add(xi, acc_re);
                    acc_im = a.im.mul_add(xr, acc_im);
                    acc_im = a.re.mul_add(xi, acc_im);
                }
            }
            z_re[i * w + j] = acc_re;
            z_im[i * w + j] = acc_im;
        }
    }
}

/// The tiers that can actually execute on this machine (always includes
/// `Scalar`). Test hook for cross-tier equality checks.
#[doc(hidden)]
pub fn available_tiers() -> Vec<KernelTier> {
    let mut tiers = vec![KernelTier::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            tiers.push(KernelTier::Avx2Fma);
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            tiers.push(KernelTier::Avx512);
        }
    }
    tiers
}

#[cfg(test)]
mod tests {
    use super::*;
    use spnn_linalg::C64;

    #[test]
    fn profile_names_round_trip() {
        for p in [KernelProfile::Reference, KernelProfile::Fma] {
            assert_eq!(KernelProfile::parse(p.as_str()), Some(p));
            assert_eq!(p.as_str().parse::<KernelProfile>().unwrap(), p);
        }
        assert_eq!(KernelProfile::parse("avx2"), None);
        assert!("turbo".parse::<KernelProfile>().is_err());
        assert_eq!(KernelProfile::default(), KernelProfile::Reference);
        assert_eq!(format!("{}", KernelProfile::Fma), "fma");
    }

    #[test]
    fn tier_detection_is_stable_and_named() {
        let t = detected_tier();
        assert_eq!(t, detected_tier(), "dispatch must be decided once");
        assert!(["avx512", "avx2+fma", "scalar"].contains(&t.as_str()));
        assert!(available_tiers().contains(&KernelTier::Scalar));
        assert!(available_tiers().contains(&t));
    }

    /// A deterministic pseudo-random plane/matrix fixture (no RNG: the
    /// kernel contract is pure arithmetic, so fixed inputs suffice).
    fn fixture(rows: usize, cols: usize, w: usize) -> (CMatrix, Vec<f64>, Vec<f64>) {
        let mut m = CMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = C64::new(
                    ((r * 31 + c * 17) % 23) as f64 * 0.083 - 0.9,
                    ((r * 13 + c * 7) % 19) as f64 * 0.061 - 0.5,
                );
            }
        }
        let a_re: Vec<f64> = (0..cols * w)
            .map(|i| ((i * 29) % 41) as f64 * 0.047 - 0.95)
            .collect();
        let a_im: Vec<f64> = (0..cols * w)
            .map(|i| ((i * 37) % 43) as f64 * 0.043 - 0.9)
            .collect();
        (m, a_re, a_im)
    }

    #[test]
    fn all_available_tiers_produce_identical_bits() {
        // Odd widths exercise full chunks plus the scalar tail; both the
        // complex and the real-input kernels must agree across tiers to
        // the last bit — the machine-independence claim of the profile.
        for &(rows, cols, w) in &[
            (5usize, 7usize, 16usize),
            (16, 16, 40),
            (3, 16, 17),
            (10, 4, 64),
        ] {
            let (m, a_re, a_im) = fixture(rows, cols, w);
            for &real_input in &[false, true] {
                let mut want_re = vec![0.0; rows * w];
                let mut want_im = vec![0.0; rows * w];
                matmul_tile_fma_forced(
                    KernelTier::Scalar,
                    &m,
                    &a_re,
                    &a_im,
                    &mut want_re,
                    &mut want_im,
                    w,
                    real_input,
                );
                for tier in available_tiers() {
                    let mut got_re = vec![0.0; rows * w];
                    let mut got_im = vec![0.0; rows * w];
                    matmul_tile_fma_forced(
                        tier,
                        &m,
                        &a_re,
                        &a_im,
                        &mut got_re,
                        &mut got_im,
                        w,
                        real_input,
                    );
                    let wb: Vec<u64> = want_re.iter().map(|x| x.to_bits()).collect();
                    let gb: Vec<u64> = got_re.iter().map(|x| x.to_bits()).collect();
                    assert_eq!(
                        gb, wb,
                        "{tier:?} re plane ({rows}x{cols} w={w} real={real_input})"
                    );
                    let wb: Vec<u64> = want_im.iter().map(|x| x.to_bits()).collect();
                    let gb: Vec<u64> = got_im.iter().map(|x| x.to_bits()).collect();
                    assert_eq!(
                        gb, wb,
                        "{tier:?} im plane ({rows}x{cols} w={w} real={real_input})"
                    );
                }
            }
        }
    }

    #[test]
    fn fma_matmul_agrees_with_reference_to_rounding() {
        // Not bit-identical (that is the whole point of the profile split)
        // but numerically the same product: agreement to ~1e-13 relative.
        let (m, a_re, a_im) = fixture(6, 16, 33);
        let w = 33;
        let mut f_re = vec![0.0; 6 * w];
        let mut f_im = vec![0.0; 6 * w];
        matmul_tile_fma(&m, &a_re, &a_im, &mut f_re, &mut f_im, w, false);
        for i in 0..6 {
            for j in 0..w {
                // Naive complex dot product as the semantic reference.
                let mut re = 0.0;
                let mut im = 0.0;
                for k in 0..16 {
                    let a = m[(i, k)];
                    let xr = a_re[k * w + j];
                    let xi = a_im[k * w + j];
                    re += a.re * xr - a.im * xi;
                    im += a.im * xr + a.re * xi;
                }
                assert!(
                    (f_re[i * w + j] - re).abs() <= 1e-12 * re.abs().max(1.0),
                    "re[{i},{j}]"
                );
                assert!(
                    (f_im[i * w + j] - im).abs() <= 1e-12 * im.abs().max(1.0),
                    "im[{i},{j}]"
                );
            }
        }
    }

    #[test]
    fn fused_activation_is_deterministic_and_close_to_reference() {
        let z_re: Vec<f64> = (0..97).map(|i| (i as f64) * 0.11 - 4.0).collect();
        let z_im: Vec<f64> = (0..97).map(|i| (i as f64) * 0.07 - 3.0).collect();
        let mut a_re = z_re.clone();
        let mut a_im = z_im.clone();
        activate_tile_fma(&mut a_re, &mut a_im);
        let mut b_re = z_re.clone();
        let mut b_im = z_im.clone();
        activate_tile_fma(&mut b_re, &mut b_im);
        for (a, b) in a_re.iter().zip(&b_re) {
            assert_eq!(a.to_bits(), b.to_bits(), "fused activation must be pure");
        }
        assert!(a_im.iter().all(|&x| x == 0.0), "imaginary plane zeroed");
        for (i, (&r, &im)) in z_re.iter().zip(&z_im).enumerate() {
            let reference = spnn_neural::activation::softplus((r * r + im * im).sqrt());
            assert!(
                (a_re[i] - reference).abs() <= 1e-12 * reference.max(1.0),
                "element {i}: fused {} vs reference {reference}",
                a_re[i]
            );
        }
    }
}
