//! Silicon-photonic neural network simulation under uncertainties — the
//! system level (§III-D) of the DATE 2021 paper and its experiment
//! framework.
//!
//! The pipeline this crate implements end to end:
//!
//! 1. Take a software-trained complex network (`spnn-neural`).
//! 2. Factor every weight matrix `M = U·Σ·Vᴴ` (`spnn-linalg::svd`) and map
//!    `U`, `Vᴴ` onto Clements MZI meshes and `Σ` onto a terminated-MZI line
//!    with global gain `β` (`spnn-mesh`) → [`network::PhotonicNetwork`].
//! 3. Describe *where* uncertainty strikes with a
//!    [`perturbation::PerturbationPlan`] (global / zonal / single-site) plus
//!    optional deterministic hardware effects (phase quantization, thermal
//!    crosstalk, per-MZI insertion loss).
//! 4. Estimate inference accuracy under that plan with the deterministic,
//!    multi-threaded [`monte_carlo`] engine.
//! 5. Reproduce the paper's experiments: [`exp1`] (global uncertainty sweep,
//!    Fig. 4), [`exp2`] (zonal perturbations, Fig. 5), and the
//!    [`criticality`] analysis framework (Fig. 3 and the paper's "identify
//!    critical components" deliverable). [`census`] reproduces the
//!    1374-phase-shifter architecture arithmetic.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batched;
pub mod calibration;
pub mod census;
pub mod criticality;
pub mod exp1;
pub mod exp2;
pub mod kernel;
pub mod monte_carlo;
pub mod network;
pub mod perturbation;

pub use batched::{BatchScratch, TestBatch};
pub use census::ComponentCensus;
pub use kernel::{detected_tier, KernelProfile, KernelTier};
pub use monte_carlo::{iteration_rng, iteration_seed, mc_accuracy, McResult};
pub use network::{MeshTopology, PhotonicNetwork, RealizeScratch};
pub use perturbation::{HardwareEffects, PerturbationPlan, SiteRef, Stage};
