//! The photonic realization of a trained network: per-layer
//! `Vᴴ mesh → Σ line → U mesh` (paper Fig. 1 and §II-B).
//!
//! Construction performs, for every trained weight matrix `M`:
//!
//! 1. complex SVD `M = U·Σ·Vᴴ`,
//! 2. optional seeded shuffle of the singular-value order (the paper notes
//!    "the singular values arranged in random order" for EXP 2 — the order
//!    permutes the columns of `U` and `V` and therefore redistributes tuned
//!    phases across the meshes),
//! 3. Clements (or Reck) decomposition of `U` and `Vᴴ`,
//! 4. a [`DiagonalLine`] for `Σ` with global gain `β`.
//!
//! Inference then alternates realized layer matrices with the same
//! activations used in software training (`spnn-neural`), so the *only*
//! difference between software and hardware accuracy is the photonic
//! hardware model.

use crate::perturbation::{HardwareEffects, PerturbationPlan, SiteRef, Stage};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use spnn_linalg::svd::svd;
use spnn_linalg::{CMatrix, LinalgError, C64};
use spnn_mesh::{clements, reck, DiagonalLine, MeshError, UnitaryMesh, ZoneGrid};
use spnn_neural::activation::{intensity, mod_softplus};
use spnn_neural::loss::argmax;
use spnn_neural::ComplexNetwork;
use std::error::Error;
use std::fmt;

/// Mesh topology used to realize the unitary multipliers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MeshTopology {
    /// Clements rectangular design (the paper's choice).
    #[default]
    Clements,
    /// Reck triangular design (topology-robustness baseline).
    Reck,
}

/// Errors raised while mapping a network onto photonic hardware.
#[derive(Debug)]
#[non_exhaustive]
pub enum SpnnError {
    /// SVD failure (should not occur for finite weights).
    Linalg(LinalgError),
    /// Mesh synthesis failure (should not occur for SVD factors).
    Mesh(MeshError),
}

impl fmt::Display for SpnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpnnError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            SpnnError::Mesh(e) => write!(f, "mesh synthesis error: {e}"),
        }
    }
}

impl Error for SpnnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpnnError::Linalg(e) => Some(e),
            SpnnError::Mesh(e) => Some(e),
        }
    }
}

impl From<LinalgError> for SpnnError {
    fn from(e: LinalgError) -> Self {
        SpnnError::Linalg(e)
    }
}

impl From<MeshError> for SpnnError {
    fn from(e: MeshError) -> Self {
        SpnnError::Mesh(e)
    }
}

/// One photonic linear layer: `M = U·Σ·Vᴴ` in hardware form.
#[derive(Debug, Clone)]
pub struct PhotonicLayer {
    v_mesh: UnitaryMesh,
    sigma: DiagonalLine,
    u_mesh: UnitaryMesh,
    v_zones: ZoneGrid,
    u_zones: ZoneGrid,
    intended: CMatrix,
}

impl PhotonicLayer {
    /// Maps one weight matrix onto hardware.
    fn from_weight(
        weight: &CMatrix,
        topology: MeshTopology,
        shuffle_rng: Option<&mut StdRng>,
    ) -> Result<Self, SpnnError> {
        let f = svd(weight)?;
        let (mut u, mut s, mut v) = (f.u, f.s, f.v);

        if let Some(rng) = shuffle_rng {
            let k = s.len();
            let mut perm: Vec<usize> = (0..k).collect();
            perm.shuffle(rng);
            let s_old = s.clone();
            let u_old = u.clone();
            let v_old = v.clone();
            for (new_i, &old_i) in perm.iter().enumerate() {
                s[new_i] = s_old[old_i];
                for r in 0..u.rows() {
                    u[(r, new_i)] = u_old[(r, old_i)];
                }
                for r in 0..v.rows() {
                    v[(r, new_i)] = v_old[(r, old_i)];
                }
            }
        }

        let decompose = |m: &CMatrix| -> Result<UnitaryMesh, SpnnError> {
            Ok(match topology {
                MeshTopology::Clements => clements::decompose(m)?,
                MeshTopology::Reck => reck::decompose(m)?,
            })
        };
        let v_mesh = decompose(&v.adjoint())?;
        let u_mesh = decompose(&u)?;
        let sigma = DiagonalLine::from_singular_values(&s, weight.rows(), weight.cols());
        let v_zones = ZoneGrid::for_mesh(&v_mesh);
        let u_zones = ZoneGrid::for_mesh(&u_mesh);
        Ok(Self {
            v_mesh,
            sigma,
            u_mesh,
            v_zones,
            u_zones,
            intended: weight.clone(),
        })
    }

    /// Reassembles a layer from its tuned hardware parts — the persistence
    /// twin of the SVD-and-decompose construction, used by the engine's
    /// trained-context cache to restore a stored photonic mapping without
    /// re-running SVD or mesh synthesis. The zone grids are re-derived from
    /// the mesh shapes (they carry no tuned state).
    ///
    /// Reconstruction is exact: meshes, Σ line and the intended weight all
    /// round-trip bit for bit, so a cached layer's [`PhotonicLayer::matrix`]
    /// and every realization drawn from it equal the original's.
    ///
    /// # Panics
    ///
    /// Panics if the part dimensions do not chain as `U·Σ·Vᴴ` for the
    /// `intended` weight's shape.
    pub fn from_parts(
        v_mesh: UnitaryMesh,
        sigma: DiagonalLine,
        u_mesh: UnitaryMesh,
        intended: CMatrix,
    ) -> Self {
        assert_eq!(v_mesh.n(), intended.cols(), "Vᴴ mesh size must equal cols");
        assert_eq!(u_mesh.n(), intended.rows(), "U mesh size must equal rows");
        assert_eq!(sigma.out_dim(), intended.rows(), "Σ rows mismatch");
        assert_eq!(sigma.in_dim(), intended.cols(), "Σ cols mismatch");
        let v_zones = ZoneGrid::for_mesh(&v_mesh);
        let u_zones = ZoneGrid::for_mesh(&u_mesh);
        Self {
            v_mesh,
            sigma,
            u_mesh,
            v_zones,
            u_zones,
            intended,
        }
    }

    /// The mesh realizing `Vᴴ`.
    pub fn v_mesh(&self) -> &UnitaryMesh {
        &self.v_mesh
    }

    /// The mesh realizing `U`.
    pub fn u_mesh(&self) -> &UnitaryMesh {
        &self.u_mesh
    }

    /// The Σ attenuator line.
    pub fn sigma(&self) -> &DiagonalLine {
        &self.sigma
    }

    /// Zone partition of the `Vᴴ` mesh (EXP 2).
    pub fn v_zones(&self) -> &ZoneGrid {
        &self.v_zones
    }

    /// Zone partition of the `U` mesh (EXP 2).
    pub fn u_zones(&self) -> &ZoneGrid {
        &self.u_zones
    }

    /// The trained weight matrix this layer realizes.
    pub fn intended(&self) -> &CMatrix {
        &self.intended
    }

    /// The ideal hardware matrix `U·Σ·Vᴴ` — equal to the trained weight up
    /// to numerical rounding.
    pub fn matrix(&self) -> CMatrix {
        self.u_mesh
            .matrix()
            .mul(&self.sigma.matrix())
            .mul(&self.v_mesh.matrix())
    }
}

/// Reusable per-layer buffers for [`PhotonicNetwork::realize_into`]: the
/// realized `V`, `Σ`, `U` factors and the `U·Σ` intermediate of every
/// layer. One realization allocates nothing once the scratch is warm.
#[derive(Debug, Default, Clone)]
pub struct RealizeScratch {
    layers: Vec<LayerScratch>,
}

#[derive(Debug, Clone)]
struct LayerScratch {
    v: CMatrix,
    s: CMatrix,
    u: CMatrix,
    us: CMatrix,
}

impl RealizeScratch {
    /// (Re)builds the per-layer buffers when they do not match `network`'s
    /// layer shapes; a warm, matching scratch is left untouched.
    fn ensure_shapes(&mut self, network: &PhotonicNetwork) {
        let matches = self.layers.len() == network.layers.len()
            && self
                .layers
                .iter()
                .zip(&network.layers)
                .all(|(s, l)| s.us.shape() == l.intended.shape());
        if matches {
            return;
        }
        self.layers = network
            .layers
            .iter()
            .map(|l| {
                let (rows, cols) = l.intended.shape();
                LayerScratch {
                    v: CMatrix::zeros(cols, cols),
                    s: CMatrix::zeros(rows, cols),
                    u: CMatrix::zeros(rows, rows),
                    us: CMatrix::zeros(rows, cols),
                }
            })
            .collect();
    }
}

/// A full photonic network: one [`PhotonicLayer`] per trained weight matrix.
///
/// # Example
///
/// ```
/// use spnn_core::{PhotonicNetwork, MeshTopology};
/// use spnn_neural::ComplexNetwork;
///
/// let software = ComplexNetwork::new(&[4, 4, 3], 11);
/// let hardware = PhotonicNetwork::from_network(&software, MeshTopology::Clements, None)?;
/// // With no uncertainty, hardware matches software exactly.
/// let m = hardware.ideal_matrices();
/// assert!(m[0].approx_eq(software.weights()[0], 1e-8));
/// # Ok::<(), spnn_core::network::SpnnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PhotonicNetwork {
    layers: Vec<PhotonicLayer>,
    topology: MeshTopology,
}

impl PhotonicNetwork {
    /// Maps a trained software network onto photonic hardware.
    ///
    /// `shuffle_seed` — when `Some`, the singular values of every layer are
    /// arranged in seeded-random order (paper §III-D, EXP 2); when `None`
    /// they stay sorted descending.
    ///
    /// # Errors
    ///
    /// Returns [`SpnnError`] if SVD or mesh synthesis fails (not expected
    /// for finite trained weights).
    pub fn from_network(
        network: &ComplexNetwork,
        topology: MeshTopology,
        shuffle_seed: Option<u64>,
    ) -> Result<Self, SpnnError> {
        let mut rng = shuffle_seed.map(StdRng::seed_from_u64);
        let layers = network
            .weights()
            .into_iter()
            .map(|w| PhotonicLayer::from_weight(w, topology, rng.as_mut()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { layers, topology })
    }

    /// Assembles a network from already-built layers — the persistence twin
    /// of [`PhotonicNetwork::from_network`], used to restore a cached
    /// mapping (see [`PhotonicLayer::from_parts`]).
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or consecutive layer shapes do not chain.
    pub fn from_layers(layers: Vec<PhotonicLayer>, topology: MeshTopology) -> Self {
        assert!(!layers.is_empty(), "need at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[1].intended().cols(),
                pair[0].intended().rows(),
                "layer shapes must chain"
            );
        }
        Self { layers, topology }
    }

    /// The photonic layers.
    pub fn layers(&self) -> &[PhotonicLayer] {
        &self.layers
    }

    /// Number of linear layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// The mesh topology in use.
    pub fn topology(&self) -> MeshTopology {
        self.topology
    }

    /// The ideal (σ = 0) per-layer matrices.
    pub fn ideal_matrices(&self) -> Vec<CMatrix> {
        self.layers.iter().map(|l| l.matrix()).collect()
    }

    /// Samples one hardware realization: every MZI in every mesh and Σ line
    /// receives the uncertainty prescribed by `plan` plus the deterministic
    /// `effects` (quantization, thermal crosstalk, loss). Returns the
    /// realized per-layer matrices.
    pub fn realize<R: Rng + ?Sized>(
        &self,
        plan: &PerturbationPlan,
        effects: &HardwareEffects,
        rng: &mut R,
    ) -> Vec<CMatrix> {
        let mut out = Vec::new();
        self.realize_into(plan, effects, rng, &mut RealizeScratch::default(), &mut out);
        out
    }

    /// [`PhotonicNetwork::realize`] into caller-owned buffers: the
    /// intermediate `V`/`Σ`/`U`/`U·Σ` matrices live in `scratch` and the
    /// realized per-layer products in `out`, all reused across calls
    /// instead of reallocated — the Monte-Carlo hot loop keeps one
    /// `(RealizeScratch, Vec<CMatrix>)` pair per worker thread.
    ///
    /// Bit-identical to `realize` (which wraps it with fresh buffers): the
    /// RNG draw order (V mesh → Σ line → U mesh per layer, layers in
    /// order) and every floating-point operation are unchanged, and each
    /// buffer is fully overwritten before being read. Buffers sized for a
    /// different network are rebuilt transparently.
    pub fn realize_into<R: Rng + ?Sized>(
        &self,
        plan: &PerturbationPlan,
        effects: &HardwareEffects,
        rng: &mut R,
        scratch: &mut RealizeScratch,
        out: &mut Vec<CMatrix>,
    ) {
        scratch.ensure_shapes(self);
        if out.len() != self.layers.len()
            || out
                .iter()
                .zip(&self.layers)
                .any(|(m, l)| m.shape() != l.intended.shape())
        {
            *out = self
                .layers
                .iter()
                .map(|l| CMatrix::zeros(l.intended.rows(), l.intended.cols()))
                .collect();
        }
        for (li, layer) in self.layers.iter().enumerate() {
            let slot = &mut scratch.layers[li];
            let v_xt = effects.mesh_crosstalk(&layer.v_mesh);
            let u_xt = effects.mesh_crosstalk(&layer.u_mesh);
            let v_sp = effects.mesh_spatial(&layer.v_mesh);
            let u_sp = effects.mesh_spatial(&layer.u_mesh);
            let v_zone_of = layer.v_zones.zone_of_each(layer.v_mesh.n_mzis());
            let u_zone_of = layer.u_zones.zone_of_each(layer.u_mesh.n_mzis());
            layer.v_mesh.matrix_with_into(
                |i, site| {
                    let site_ref = SiteRef::new(li, Stage::VMesh, i);
                    let spec = plan.spec_for(&site_ref, &v_zone_of[i]);
                    let sp = v_sp.as_ref().map(|o| o[i]);
                    effects.apply(site.theta, site.phi, v_xt.get(i), sp, &spec, rng)
                },
                &mut slot.v,
            );
            layer.sigma.matrix_with_into(
                |i, dev| {
                    let site_ref = SiteRef::new(li, Stage::Sigma, i);
                    let spec = plan.spec_for(&site_ref, &(usize::MAX, usize::MAX));
                    effects.apply(dev.theta(), dev.phi(), None, None, &spec, rng)
                },
                &mut slot.s,
            );
            layer.u_mesh.matrix_with_into(
                |i, site| {
                    let site_ref = SiteRef::new(li, Stage::UMesh, i);
                    let spec = plan.spec_for(&site_ref, &u_zone_of[i]);
                    let sp = u_sp.as_ref().map(|o| o[i]);
                    effects.apply(site.theta, site.phi, u_xt.get(i), sp, &spec, rng)
                },
                &mut slot.u,
            );
            slot.u.mul_into(&slot.s, &mut slot.us);
            slot.us.mul_into(&slot.v, &mut out[li]);
        }
    }

    /// Runs inference through explicit layer matrices (ideal or realized),
    /// returning the output intensities.
    ///
    /// # Panics
    ///
    /// Panics if `matrices.len() != n_layers()` or dims mismatch.
    pub fn forward_with(&self, matrices: &[CMatrix], input: &[C64]) -> Vec<f64> {
        assert_eq!(matrices.len(), self.layers.len(), "layer count mismatch");
        let last = matrices.len() - 1;
        let mut a = input.to_vec();
        for (l, m) in matrices.iter().enumerate() {
            let z = m.mul_vec(&a);
            a = if l < last { mod_softplus(&z) } else { z };
        }
        intensity(&a)
    }

    /// Predicted class through explicit layer matrices.
    pub fn classify_with(&self, matrices: &[CMatrix], input: &[C64]) -> usize {
        argmax(&self.forward_with(matrices, input))
    }

    /// Accuracy over a labelled set through explicit layer matrices.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != labels.len()`.
    pub fn accuracy_with(
        &self,
        matrices: &[CMatrix],
        features: &[Vec<C64>],
        labels: &[usize],
    ) -> f64 {
        assert_eq!(features.len(), labels.len(), "features/labels mismatch");
        if features.is_empty() {
            return 0.0;
        }
        let correct = features
            .iter()
            .zip(labels.iter())
            .filter(|(x, &y)| self.classify_with(matrices, x) == y)
            .count();
        correct as f64 / features.len() as f64
    }

    /// Accuracy of the ideal (uncertainty-free) hardware.
    pub fn ideal_accuracy(&self, features: &[Vec<C64>], labels: &[usize]) -> f64 {
        self.accuracy_with(&self.ideal_matrices(), features, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spnn_photonics::UncertaintySpec;

    fn software_net() -> ComplexNetwork {
        ComplexNetwork::new(&[6, 5, 4], 21)
    }

    #[test]
    fn hardware_matches_software_weights() {
        let sw = software_net();
        let hw = PhotonicNetwork::from_network(&sw, MeshTopology::Clements, None).unwrap();
        for (layer, w) in hw.layers().iter().zip(sw.weights()) {
            assert!(
                layer.matrix().approx_eq(w, 1e-8),
                "U·Σ·Vᴴ mesh does not reproduce the weight"
            );
        }
    }

    #[test]
    fn realize_into_reuse_is_bit_identical_to_realize() {
        use crate::monte_carlo::iteration_rng;
        use crate::perturbation::PerturbationPlan;
        let sw = software_net();
        let hw = PhotonicNetwork::from_network(&sw, MeshTopology::Clements, None).unwrap();
        let plan = PerturbationPlan::global(UncertaintySpec::both(0.06));
        let fx = HardwareEffects::default();
        let mut scratch = RealizeScratch::default();
        let mut reused = Vec::new();
        for k in 0..10 {
            hw.realize_into(
                &plan,
                &fx,
                &mut iteration_rng(44, k),
                &mut scratch,
                &mut reused,
            );
            let fresh = hw.realize(&plan, &fx, &mut iteration_rng(44, k));
            assert_eq!(reused.len(), fresh.len());
            for (li, (a, b)) in reused.iter().zip(&fresh).enumerate() {
                for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                    assert_eq!(x.re.to_bits(), y.re.to_bits(), "iter {k} layer {li}");
                    assert_eq!(x.im.to_bits(), y.im.to_bits(), "iter {k} layer {li}");
                }
            }
        }
    }

    #[test]
    fn hardware_matches_with_shuffled_singular_values() {
        let sw = software_net();
        let hw = PhotonicNetwork::from_network(&sw, MeshTopology::Clements, Some(99)).unwrap();
        for (layer, w) in hw.layers().iter().zip(sw.weights()) {
            assert!(layer.matrix().approx_eq(w, 1e-8), "shuffled mapping broken");
        }
    }

    #[test]
    fn reck_topology_also_reproduces_weights() {
        let sw = software_net();
        let hw = PhotonicNetwork::from_network(&sw, MeshTopology::Reck, None).unwrap();
        for (layer, w) in hw.layers().iter().zip(sw.weights()) {
            assert!(layer.matrix().approx_eq(w, 1e-8));
        }
    }

    #[test]
    fn hardware_forward_matches_software_forward() {
        let sw = software_net();
        let hw = PhotonicNetwork::from_network(&sw, MeshTopology::Clements, None).unwrap();
        let input: Vec<C64> = (0..6)
            .map(|i| C64::new(0.1 * i as f64, -0.05 * i as f64))
            .collect();
        let sw_out = sw.forward(&input);
        let hw_out = hw.forward_with(&hw.ideal_matrices(), &input);
        for (a, b) in sw_out.iter().zip(hw_out.iter()) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn from_parts_round_trip_realizes_bit_identically() {
        // The trained-context cache's core guarantee: a mapping rebuilt
        // from its stored parts draws bit-identical realizations.
        let sw = software_net();
        let hw = PhotonicNetwork::from_network(&sw, MeshTopology::Clements, Some(3)).unwrap();
        let rebuilt_layers: Vec<PhotonicLayer> = hw
            .layers()
            .iter()
            .map(|l| {
                let remesh = |m: &UnitaryMesh| {
                    let ts: Vec<(usize, f64, f64)> =
                        m.mzis().iter().map(|s| (s.top, s.theta, s.phi)).collect();
                    UnitaryMesh::from_physical_order(m.n(), &ts, m.output_phases().to_vec())
                };
                let (thetas, phis): (Vec<f64>, Vec<f64>) =
                    (0..l.sigma().n_mzis()).map(|i| l.sigma().phases(i)).unzip();
                let sigma = DiagonalLine::from_raw_parts(
                    l.sigma().out_dim(),
                    l.sigma().in_dim(),
                    l.sigma().beta(),
                    thetas,
                    phis,
                );
                PhotonicLayer::from_parts(
                    remesh(l.v_mesh()),
                    sigma,
                    remesh(l.u_mesh()),
                    l.intended().clone(),
                )
            })
            .collect();
        let rebuilt = PhotonicNetwork::from_layers(rebuilt_layers, hw.topology());
        assert_eq!(rebuilt.topology(), hw.topology());

        let plan = PerturbationPlan::global(UncertaintySpec::both(0.06));
        let fx = HardwareEffects::default();
        let a = hw.realize(&plan, &fx, &mut StdRng::seed_from_u64(4));
        let b = rebuilt.realize(&plan, &fx, &mut StdRng::seed_from_u64(4));
        for (ma, mb) in a.iter().zip(b.iter()) {
            for r in 0..ma.rows() {
                for c in 0..ma.cols() {
                    assert_eq!(ma[(r, c)].re.to_bits(), mb[(r, c)].re.to_bits());
                    assert_eq!(ma[(r, c)].im.to_bits(), mb[(r, c)].im.to_bits());
                }
            }
        }
    }

    #[test]
    fn realize_without_uncertainty_is_ideal() {
        let sw = software_net();
        let hw = PhotonicNetwork::from_network(&sw, MeshTopology::Clements, None).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let realized = hw.realize(
            &PerturbationPlan::None,
            &HardwareEffects::default(),
            &mut rng,
        );
        for (r, i) in realized.iter().zip(hw.ideal_matrices().iter()) {
            assert!(r.approx_eq(i, 1e-10));
        }
    }

    #[test]
    fn realize_with_uncertainty_deviates() {
        let sw = software_net();
        let hw = PhotonicNetwork::from_network(&sw, MeshTopology::Clements, None).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let plan = PerturbationPlan::global(UncertaintySpec::both(0.05));
        let realized = hw.realize(&plan, &HardwareEffects::default(), &mut rng);
        let ideal = hw.ideal_matrices();
        let dev = (&realized[0] - &ideal[0]).frobenius_norm();
        assert!(dev > 1e-3, "perturbation had no effect: {dev}");
    }

    #[test]
    fn realizations_differ_across_draws() {
        let sw = software_net();
        let hw = PhotonicNetwork::from_network(&sw, MeshTopology::Clements, None).unwrap();
        let plan = PerturbationPlan::global(UncertaintySpec::both(0.05));
        let a = hw.realize(
            &plan,
            &HardwareEffects::default(),
            &mut StdRng::seed_from_u64(1),
        );
        let b = hw.realize(
            &plan,
            &HardwareEffects::default(),
            &mut StdRng::seed_from_u64(2),
        );
        assert!((&a[0] - &b[0]).frobenius_norm() > 1e-6);
        // Same seed → same realization.
        let c = hw.realize(
            &plan,
            &HardwareEffects::default(),
            &mut StdRng::seed_from_u64(1),
        );
        assert!(a[0].approx_eq(&c[0], 0.0));
    }
}
