//! Criticality analysis — the paper's design-time framework for finding the
//! components where "random uncertainties lead to severe performance
//! degradation" (§I, §III-C, Fig. 3).
//!
//! Two complementary measures:
//!
//! - **Layer level** (Fig. 3): perturb one MZI at a time in a unitary mesh
//!   and report the Monte-Carlo-average RVD between the realized and the
//!   intended unitary — MZI position and tuned phases make some devices far
//!   more damaging than others.
//! - **Device level** (Fig. 2 proxy): MZIs with larger tuned phase angles
//!   are more susceptible to a given *relative* error; the per-site phase
//!   load provides an analysis-only (no simulation) criticality ranking.
//!
//! "Our entire analysis can be performed prior to fabrication and after
//! software training" — everything here needs only the mesh parameters.

use crate::monte_carlo::splitmix64;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spnn_mesh::rvd::rvd;
use spnn_mesh::UnitaryMesh;
use spnn_photonics::UncertaintySpec;

/// Average RVD caused by perturbing each MZI of a mesh in isolation —
/// the Fig. 3 profile.
///
/// For every MZI `i`, runs `iterations` Monte-Carlo draws where only MZI
/// `i` receives `spec` (all other devices ideal) and averages
/// `RVD(realized, intended)`.
///
/// # Panics
///
/// Panics if `iterations == 0`.
pub fn mzi_rvd_profile(
    mesh: &UnitaryMesh,
    spec: &UncertaintySpec,
    iterations: usize,
    seed: u64,
) -> Vec<f64> {
    assert!(iterations > 0, "need at least one iteration");
    let intended = mesh.matrix();
    let mut profile = Vec::with_capacity(mesh.n_mzis());
    for target in 0..mesh.n_mzis() {
        let mut acc = 0.0;
        for k in 0..iterations {
            let mut rng =
                StdRng::seed_from_u64(splitmix64(seed ^ ((target as u64) << 24) ^ k as u64));
            let realized = mesh.matrix_with(|i, site| {
                let dev = site.device();
                if i == target {
                    spec.perturb_mzi(&dev, &mut rng)
                } else {
                    dev
                }
            });
            acc += rvd(&realized, &intended);
        }
        profile.push(acc / iterations as f64);
    }
    profile
}

/// Sites ranked by average RVD, most critical first: `(mzi_index, rvd)`.
pub fn rank_by_rvd(
    mesh: &UnitaryMesh,
    spec: &UncertaintySpec,
    iterations: usize,
    seed: u64,
) -> Vec<(usize, f64)> {
    let profile = mzi_rvd_profile(mesh, spec, iterations, seed);
    let mut ranked: Vec<(usize, f64)> = profile.into_iter().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite RVD"));
    ranked
}

/// Analysis-only criticality proxy from the device-level result (Fig. 2):
/// sites ranked by tuned phase load `θ + φ` (wrapped), largest first.
/// No Monte-Carlo needed — O(#MZI).
pub fn rank_by_phase_load(mesh: &UnitaryMesh) -> Vec<(usize, f64)> {
    let mut ranked: Vec<(usize, f64)> = mesh.phase_load().into_iter().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite load"));
    ranked
}

/// Summary of a mesh's uncertainty criticality.
#[derive(Debug, Clone)]
pub struct CriticalityReport {
    /// Per-MZI average RVD (index-aligned with `mesh.mzis()`).
    pub rvd_profile: Vec<f64>,
    /// Spread of the profile: `(min, max)` — the paper's Fig. 3 observation
    /// is that this spread is wide and matrix-dependent.
    pub rvd_range: (f64, f64),
    /// Most critical site by RVD.
    pub most_critical: usize,
    /// Spearman-style rank agreement between the RVD ranking and the cheap
    /// phase-load proxy, in `[-1, 1]`.
    pub proxy_agreement: f64,
}

/// Produces a full criticality report for one mesh.
///
/// # Panics
///
/// Panics if the mesh has no MZIs or `iterations == 0`.
pub fn analyze_mesh(
    mesh: &UnitaryMesh,
    spec: &UncertaintySpec,
    iterations: usize,
    seed: u64,
) -> CriticalityReport {
    assert!(mesh.n_mzis() > 0, "mesh has no MZIs");
    let rvd_profile = mzi_rvd_profile(mesh, spec, iterations, seed);
    let min = rvd_profile.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = rvd_profile
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let most_critical = rvd_profile
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty");

    let load: Vec<f64> = mesh.phase_load();
    let proxy_agreement = spearman(&rvd_profile, &load);

    CriticalityReport {
        rvd_profile,
        rvd_range: (min, max),
        most_critical,
        proxy_agreement,
    }
}

/// Spearman rank correlation between two equal-length score vectors.
fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let rank = |xs: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|&i, &j| xs[i].partial_cmp(&xs[j]).expect("finite"));
        let mut r = vec![0.0; xs.len()];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    let ra = rank(a);
    let rb = rank(b);
    let mean = (n as f64 - 1.0) / 2.0;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..n {
        let da = ra[i] - mean;
        let db = rb[i] - mean;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spnn_linalg::random::haar_unitary;
    use spnn_mesh::clements;

    fn mesh5(seed: u64) -> UnitaryMesh {
        let u = haar_unitary(5, &mut StdRng::seed_from_u64(seed));
        clements::decompose(&u).unwrap()
    }

    #[test]
    fn profile_has_one_entry_per_mzi() {
        let mesh = mesh5(61);
        let spec = UncertaintySpec::both(0.05);
        let profile = mzi_rvd_profile(&mesh, &spec, 20, 1);
        assert_eq!(profile.len(), 10);
        assert!(profile.iter().all(|&x| x > 0.0), "every MZI matters");
    }

    #[test]
    fn profile_varies_across_mzis_fig3_observation() {
        // Fig. 3: "significant variation in the average RVD corresponding to
        // different MZIs representing the same unitary matrix."
        let mesh = mesh5(62);
        let spec = UncertaintySpec::both(0.05);
        let profile = mzi_rvd_profile(&mesh, &spec, 50, 2);
        let min = profile.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = profile.iter().cloned().fold(0.0, f64::max);
        assert!(max > 1.5 * min, "profile too flat: {profile:?}");
    }

    #[test]
    fn profiles_differ_across_matrices_fig3_observation() {
        // Fig. 3: "the distribution of average RVD across the MZIs differs
        // across the four unitary matrices."
        let spec = UncertaintySpec::both(0.05);
        let p1 = mzi_rvd_profile(&mesh5(63), &spec, 30, 3);
        let p2 = mzi_rvd_profile(&mesh5(64), &spec, 30, 3);
        let dist: f64 = p1.iter().zip(p2.iter()).map(|(a, b)| (a - b).abs()).sum();
        assert!(dist > 0.05, "profiles suspiciously similar");
    }

    #[test]
    fn ranking_sorts_descending() {
        let mesh = mesh5(65);
        let spec = UncertaintySpec::both(0.05);
        let ranked = rank_by_rvd(&mesh, &spec, 10, 4);
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(ranked.len(), 10);
    }

    #[test]
    fn phase_load_ranking_is_deterministic_and_sorted() {
        let mesh = mesh5(66);
        let r1 = rank_by_phase_load(&mesh);
        let r2 = rank_by_phase_load(&mesh);
        assert_eq!(r1, r2);
        for w in r1.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn report_is_consistent() {
        let mesh = mesh5(67);
        let spec = UncertaintySpec::both(0.05);
        let report = analyze_mesh(&mesh, &spec, 20, 5);
        assert_eq!(report.rvd_profile.len(), mesh.n_mzis());
        assert!(report.rvd_range.0 <= report.rvd_range.1);
        assert_eq!(report.rvd_profile[report.most_critical], report.rvd_range.1);
        assert!((-1.0..=1.0).contains(&report.proxy_agreement));
    }

    #[test]
    fn spearman_perfect_and_inverse() {
        assert!((spearman(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]) - 1.0).abs() < 1e-12);
        assert!((spearman(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
    }
}
