//! Perturbation plans — *where* uncertainty strikes — and deterministic
//! hardware effects (quantization, thermal crosstalk, loss).
//!
//! The paper's experiments differ only in targeting:
//!
//! - **EXP 1**: one global [`spnn_photonics::UncertaintySpec`] across every
//!   MZI of every mesh *and* Σ line → [`PerturbationPlan::Global`].
//! - **EXP 2**: σ = 0.1 inside one 2×2 zone of one unitary multiplier,
//!   σ = 0.05 everywhere else, Σ error-free → [`PerturbationPlan::Zonal`].
//! - **Fig. 3 / criticality**: a single faulty MZI, everything else ideal →
//!   [`PerturbationPlan::SingleMzi`].

use rand::Rng;
use spnn_mesh::UnitaryMesh;
use spnn_photonics::phase_shifter::quantize_phase;
use spnn_photonics::spatial::CorrelatedFpv;
use spnn_photonics::thermal::{HeaterPosition, ThermalCrosstalk};
use spnn_photonics::{Mzi, UncertaintySpec};

/// Which hardware stage of a layer a site belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// The mesh realizing `Vᴴ` (light meets it first).
    VMesh,
    /// The Σ attenuator line.
    Sigma,
    /// The mesh realizing `U`.
    UMesh,
}

impl Stage {
    /// Short label used in CSV output (`"VH"`, `"Sigma"`, `"U"`).
    pub fn label(&self) -> &'static str {
        match self {
            Stage::VMesh => "VH",
            Stage::Sigma => "Sigma",
            Stage::UMesh => "U",
        }
    }
}

/// Address of one MZI in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SiteRef {
    /// Linear-layer index (0 = input layer).
    pub layer: usize,
    /// Hardware stage within the layer.
    pub stage: Stage,
    /// MZI index within the stage (mesh physical order / Σ diagonal order).
    pub index: usize,
}

impl SiteRef {
    /// Creates a site reference.
    pub fn new(layer: usize, stage: Stage, index: usize) -> Self {
        Self {
            layer,
            stage,
            index,
        }
    }
}

/// A complete description of which uncertainty hits which MZI.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
#[derive(Default)]
pub enum PerturbationPlan {
    /// No uncertainty anywhere (nominal hardware).
    #[default]
    None,
    /// The same spec on every MZI; `include_sigma` extends it to the Σ
    /// attenuator lines (EXP 1 does; EXP 2-style analyses do not).
    Global {
        /// Uncertainty applied to every targeted MZI.
        spec: UncertaintySpec,
        /// Whether Σ-line MZIs are perturbed too.
        include_sigma: bool,
    },
    /// EXP 2: `hot` inside the selected zone of the selected unitary
    /// multiplier, `base` on every other unitary-mesh MZI, Σ error-free.
    Zonal {
        /// Spec for all non-selected unitary-mesh MZIs.
        base: UncertaintySpec,
        /// Spec for the selected zone.
        hot: UncertaintySpec,
        /// Target layer index.
        layer: usize,
        /// Target stage (must be `VMesh` or `UMesh`).
        stage: Stage,
        /// Target zone coordinates `(row, col)` in the stage's [`spnn_mesh::ZoneGrid`].
        zone: (usize, usize),
    },
    /// A single faulty MZI; everything else ideal (Fig. 3 machinery).
    SingleMzi {
        /// Spec for the faulty device.
        spec: UncertaintySpec,
        /// The faulty device's address.
        site: SiteRef,
    },
}

impl PerturbationPlan {
    /// EXP 1 style: global uncertainty including the Σ lines.
    pub fn global(spec: UncertaintySpec) -> Self {
        PerturbationPlan::Global {
            spec,
            include_sigma: true,
        }
    }

    /// Global uncertainty on the unitary meshes only (Σ error-free).
    pub fn global_no_sigma(spec: UncertaintySpec) -> Self {
        PerturbationPlan::Global {
            spec,
            include_sigma: false,
        }
    }

    /// EXP 2 style zonal plan with the paper's defaults
    /// (base σ = 0.05, hot σ = 0.1, both PhS and BeS).
    pub fn zonal_paper_defaults(layer: usize, stage: Stage, zone: (usize, usize)) -> Self {
        PerturbationPlan::Zonal {
            base: UncertaintySpec::both(0.05),
            hot: UncertaintySpec::both(0.1),
            layer,
            stage,
            zone,
        }
    }

    /// Single-MZI plan.
    pub fn single(spec: UncertaintySpec, site: SiteRef) -> Self {
        PerturbationPlan::SingleMzi { spec, site }
    }

    /// Resolves the uncertainty spec for a site. `zone` is the site's zone
    /// in its own mesh's [`spnn_mesh::ZoneGrid`] (ignored except by zonal plans).
    pub fn spec_for(&self, site: &SiteRef, zone: &(usize, usize)) -> UncertaintySpec {
        match self {
            PerturbationPlan::None => UncertaintySpec::none(),
            PerturbationPlan::Global {
                spec,
                include_sigma,
            } => {
                if site.stage == Stage::Sigma && !include_sigma {
                    UncertaintySpec::none()
                } else {
                    *spec
                }
            }
            PerturbationPlan::Zonal {
                base,
                hot,
                layer,
                stage,
                zone: hot_zone,
            } => {
                if site.stage == Stage::Sigma {
                    UncertaintySpec::none() // paper: Σ assumed error-free
                } else if site.layer == *layer && site.stage == *stage && zone == hot_zone {
                    *hot
                } else {
                    *base
                }
            }
            PerturbationPlan::SingleMzi { spec, site: s } => {
                if site == s {
                    *spec
                } else {
                    UncertaintySpec::none()
                }
            }
        }
    }
}

/// Precomputed thermal-crosstalk phase offsets for one mesh: `(Δθ, Δφ)` per
/// MZI, or `None` when the model is disabled.
#[derive(Debug, Clone, Default)]
pub struct CrosstalkOffsets(Option<Vec<(f64, f64)>>);

impl CrosstalkOffsets {
    /// Offsets for MZI `i`, if crosstalk is enabled.
    pub fn get(&self, i: usize) -> Option<(f64, f64)> {
        self.0.as_ref().map(|v| v[i])
    }
}

/// Deterministic hardware effects applied to every MZI on top of the random
/// uncertainty plan.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareEffects {
    /// Phase-DAC resolution in bits (`None` = continuous, the paper's
    /// baseline assumption).
    pub quantization_bits: Option<u32>,
    /// Mutual-heating crosstalk model (disabled by default).
    pub thermal: ThermalCrosstalk,
    /// Layout-correlated fabrication variation (ref. \[7\] of the paper;
    /// disabled by default — the paper's experiments assume i.i.d. errors).
    pub spatial: Option<CorrelatedFpv>,
    /// Excess insertion loss per MZI in dB (0 by default).
    pub mzi_loss_db: f64,
    /// Heater pitch `(x per mesh column, y per mode)` in µm, used to place
    /// heaters for the crosstalk model.
    pub heater_pitch_um: (f64, f64),
}

impl Default for HardwareEffects {
    /// The paper's baseline: ideal DAC, no crosstalk model, lossless MZIs.
    fn default() -> Self {
        Self {
            quantization_bits: None,
            thermal: ThermalCrosstalk::disabled(),
            spatial: None,
            mzi_loss_db: 0.0,
            heater_pitch_um: (300.0, 80.0),
        }
    }
}

impl HardwareEffects {
    /// Returns effects with only phase quantization enabled.
    pub fn with_quantization(bits: u32) -> Self {
        Self {
            quantization_bits: Some(bits),
            ..Self::default()
        }
    }

    /// Returns effects with only thermal crosstalk enabled.
    pub fn with_thermal(thermal: ThermalCrosstalk) -> Self {
        Self {
            thermal,
            ..Self::default()
        }
    }

    /// Returns effects with only per-MZI insertion loss enabled.
    ///
    /// # Panics
    ///
    /// Panics if `loss_db < 0`.
    pub fn with_loss(loss_db: f64) -> Self {
        assert!(loss_db >= 0.0, "loss must be non-negative");
        Self {
            mzi_loss_db: loss_db,
            ..Self::default()
        }
    }

    /// Returns effects with only layout-correlated FPV enabled.
    pub fn with_spatial(spatial: CorrelatedFpv) -> Self {
        Self {
            spatial: Some(spatial),
            ..Self::default()
        }
    }

    /// Precomputes per-MZI correlated-FPV offsets `(Δθ, Δφ, Δr_in, Δr_out)`
    /// for a mesh from the device positions, or `None` when disabled.
    pub fn mesh_spatial(&self, mesh: &UnitaryMesh) -> Option<Vec<(f64, f64, f64, f64)>> {
        let fpv = self.spatial.as_ref()?;
        let (px, py) = self.heater_pitch_um;
        Some(
            mesh.mzis()
                .iter()
                .map(|site| {
                    let x0 = site.column as f64 * px;
                    let y = site.top as f64 * py;
                    (
                        fpv.phase_offset(x0 + 0.6 * px, y),
                        fpv.phase_offset(x0 + 0.1 * px, y),
                        fpv.reflectance_offset(x0, y),
                        fpv.reflectance_offset(x0 + px, y),
                    )
                })
                .collect(),
        )
    }

    /// Precomputes the crosstalk-induced `(Δθ, Δφ)` for every MZI of a mesh.
    /// Both heaters of every MZI act as aggressors and victims.
    pub fn mesh_crosstalk(&self, mesh: &UnitaryMesh) -> CrosstalkOffsets {
        if self.thermal.is_disabled() || mesh.n_mzis() == 0 {
            return CrosstalkOffsets(None);
        }
        let (px, py) = self.heater_pitch_um;
        let mut phases = Vec::with_capacity(2 * mesh.n_mzis());
        let mut positions = Vec::with_capacity(2 * mesh.n_mzis());
        for site in mesh.mzis() {
            let x0 = site.column as f64 * px;
            let y = site.top as f64 * py;
            // φ heater sits at the MZI input, θ heater mid-device.
            phases.push(site.phi);
            positions.push(HeaterPosition::new(x0 + 0.1 * px, y));
            phases.push(site.theta);
            positions.push(HeaterPosition::new(x0 + 0.6 * px, y));
        }
        let errors = self.thermal.phase_errors(&phases, &positions);
        let offsets = errors
            .chunks(2)
            .map(|pair| (pair[1], pair[0])) // (Δθ, Δφ)
            .collect();
        CrosstalkOffsets(Some(offsets))
    }

    /// Builds the final (possibly faulty) device for a site: quantizes the
    /// commanded phases, adds deterministic crosstalk and correlated-FPV
    /// offsets, then draws the random errors prescribed by `spec`, and
    /// applies insertion loss.
    pub fn apply<R: Rng + ?Sized>(
        &self,
        theta: f64,
        phi: f64,
        crosstalk: Option<(f64, f64)>,
        spatial: Option<(f64, f64, f64, f64)>,
        spec: &UncertaintySpec,
        rng: &mut R,
    ) -> Mzi {
        let (mut th, mut ph) = (theta, phi);
        if let Some(bits) = self.quantization_bits {
            th = quantize_phase(th, bits);
            ph = quantize_phase(ph, bits);
        }
        if let Some((dt, dp)) = crosstalk {
            th += dt;
            ph += dp;
        }
        let (dr_in, dr_out) = match spatial {
            Some((dt, dp, dri, dro)) => {
                th += dt;
                ph += dp;
                (dri, dro)
            }
            None => (0.0, 0.0),
        };
        let dev = spec
            .perturb_mzi(&Mzi::ideal(th, ph), rng)
            .with_splitter_errors(dr_in, dr_out);
        if self.mzi_loss_db > 0.0 {
            dev.with_loss_db(self.mzi_loss_db)
        } else {
            dev
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn global_plan_covers_sigma_optionally() {
        let spec = UncertaintySpec::both(0.05);
        let with = PerturbationPlan::global(spec);
        let without = PerturbationPlan::global_no_sigma(spec);
        let sigma_site = SiteRef::new(0, Stage::Sigma, 3);
        let mesh_site = SiteRef::new(1, Stage::UMesh, 7);
        let z = (0, 0);
        assert_eq!(with.spec_for(&sigma_site, &z), spec);
        assert_eq!(without.spec_for(&sigma_site, &z), UncertaintySpec::none());
        assert_eq!(with.spec_for(&mesh_site, &z), spec);
        assert_eq!(without.spec_for(&mesh_site, &z), spec);
    }

    #[test]
    fn zonal_plan_targets_one_zone() {
        let plan = PerturbationPlan::zonal_paper_defaults(1, Stage::UMesh, (2, 3));
        let hot_site = SiteRef::new(1, Stage::UMesh, 0);
        let cold_same_mesh = SiteRef::new(1, Stage::UMesh, 1);
        let other_layer = SiteRef::new(0, Stage::VMesh, 0);
        let sigma = SiteRef::new(1, Stage::Sigma, 0);
        assert_eq!(plan.spec_for(&hot_site, &(2, 3)).sigma_phs(), 0.1);
        assert_eq!(plan.spec_for(&cold_same_mesh, &(2, 4)).sigma_phs(), 0.05);
        assert_eq!(plan.spec_for(&other_layer, &(2, 3)).sigma_phs(), 0.05);
        assert_eq!(plan.spec_for(&sigma, &(2, 3)), UncertaintySpec::none());
    }

    #[test]
    fn single_mzi_plan_isolates_site() {
        let spec = UncertaintySpec::both(0.05);
        let target = SiteRef::new(0, Stage::VMesh, 4);
        let plan = PerturbationPlan::single(spec, target);
        assert_eq!(plan.spec_for(&target, &(0, 0)), spec);
        let other = SiteRef::new(0, Stage::VMesh, 5);
        assert_eq!(plan.spec_for(&other, &(0, 0)), UncertaintySpec::none());
    }

    #[test]
    fn effects_apply_quantization() {
        let fx = HardwareEffects::with_quantization(4);
        let mut rng = StdRng::seed_from_u64(1);
        let dev = fx.apply(0.4, 1.3, None, None, &UncertaintySpec::none(), &mut rng);
        let step = std::f64::consts::TAU / 16.0;
        assert!((dev.theta() / step - (dev.theta() / step).round()).abs() < 1e-10);
        assert!((dev.phi() / step - (dev.phi() / step).round()).abs() < 1e-10);
    }

    #[test]
    fn effects_apply_crosstalk_offsets() {
        let fx = HardwareEffects::default();
        let mut rng = StdRng::seed_from_u64(2);
        let dev = fx.apply(
            1.0,
            2.0,
            Some((0.1, -0.2)),
            None,
            &UncertaintySpec::none(),
            &mut rng,
        );
        assert!((dev.theta() - 1.1).abs() < 1e-12);
        assert!((dev.phi() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn effects_apply_loss() {
        let fx = HardwareEffects::with_loss(0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let dev = fx.apply(1.0, 0.0, None, None, &UncertaintySpec::none(), &mut rng);
        assert!((dev.loss_db() - 0.5).abs() < 1e-15);
        assert!(!dev.transfer_matrix().is_unitary(1e-6), "lossy device");
    }

    #[test]
    fn mesh_crosstalk_disabled_returns_none() {
        let fx = HardwareEffects::default();
        let mesh = UnitaryMesh::from_physical_order(2, &[(0, 1.0, 0.5)], vec![0.0; 2]);
        assert!(fx.mesh_crosstalk(&mesh).get(0).is_none());
    }

    #[test]
    fn spatial_offsets_are_correlated_across_neighbours() {
        let fx = HardwareEffects::with_spatial(CorrelatedFpv::new(9, 2000.0, 0.05, 0.01));
        let mesh = UnitaryMesh::from_physical_order(
            4,
            &[(0, 1.0, 0.5), (2, 1.5, 0.2), (1, 0.7, 0.9)],
            vec![0.0; 4],
        );
        let offsets = fx.mesh_spatial(&mesh).expect("spatial enabled");
        assert_eq!(offsets.len(), 3);
        // With a 2 mm correlation length, devices a few hundred µm apart see
        // nearly identical offsets — the signature of correlated FPV.
        let (t0, ..) = offsets[0];
        let (t1, ..) = offsets[2];
        assert!(
            (t0 - t1).abs() < 0.05,
            "neighbouring offsets should be close"
        );
        // Disabled model yields None.
        assert!(HardwareEffects::default().mesh_spatial(&mesh).is_none());
    }

    #[test]
    fn apply_folds_spatial_offsets_into_device() {
        let fx = HardwareEffects::default();
        let mut rng = StdRng::seed_from_u64(11);
        let dev = fx.apply(
            1.0,
            2.0,
            None,
            Some((0.05, -0.1, 0.02, -0.03)),
            &UncertaintySpec::none(),
            &mut rng,
        );
        assert!((dev.theta() - 1.05).abs() < 1e-12);
        assert!((dev.phi() - 1.9).abs() < 1e-12);
        assert!(dev.splitter_in().reflectance() > std::f64::consts::FRAC_1_SQRT_2);
        assert!(dev.splitter_out().reflectance() < std::f64::consts::FRAC_1_SQRT_2);
        assert!(dev.transfer_matrix().is_unitary(1e-10), "still lossless");
    }

    #[test]
    fn mesh_crosstalk_enabled_gives_offsets() {
        let fx = HardwareEffects::with_thermal(ThermalCrosstalk::new(0.02, 100.0));
        let mesh =
            UnitaryMesh::from_physical_order(3, &[(0, 1.5, 0.5), (1, 2.0, 1.0)], vec![0.0; 3]);
        let xt = fx.mesh_crosstalk(&mesh);
        let (dt0, dp0) = xt.get(0).unwrap();
        assert!(dt0 > 0.0 && dp0 > 0.0, "heaters should couple");
        let (dt1, _) = xt.get(1).unwrap();
        assert!(dt1 > 0.0);
    }
}
