//! Component census — the paper's architecture arithmetic.
//!
//! The abstract quotes "an SPNN with two hidden layers and **1374**
//! tunable-thermal-phase shifters". That number decomposes as
//!
//! | layer | shape  | U mesh | Vᴴ mesh | Σ line | MZIs | PhS |
//! |-------|--------|--------|---------|--------|------|-----|
//! | L0    | 16×16  | 120    | 120     | 16     | 256  | 512 |
//! | L1    | 16×16  | 120    | 120     | 16     | 256  | 512 |
//! | L2    | 10×16  | 45     | 120     | 10     | 175  | 350 |
//! | total |        |        |         |        | 687  | 1374|
//!
//! (An `N×N` Clements mesh has `N(N−1)/2` MZIs; each MZI carries two phase
//! shifters and two beam splitters; the output phase screens are not
//! counted, which is the only accounting that reproduces 1374.)

use crate::network::PhotonicNetwork;
use std::fmt;

/// Component counts for a single photonic layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerCensus {
    /// Layer index.
    pub layer: usize,
    /// Output dimension of the layer.
    pub out_dim: usize,
    /// Input dimension of the layer.
    pub in_dim: usize,
    /// MZIs in the `U` mesh.
    pub u_mzis: usize,
    /// MZIs in the `Vᴴ` mesh.
    pub v_mzis: usize,
    /// Terminated MZIs in the Σ line.
    pub sigma_mzis: usize,
}

impl LayerCensus {
    /// Total MZIs in the layer.
    pub fn mzis(&self) -> usize {
        self.u_mzis + self.v_mzis + self.sigma_mzis
    }

    /// Tunable phase shifters (two per MZI).
    pub fn phase_shifters(&self) -> usize {
        2 * self.mzis()
    }

    /// Beam splitters (two per MZI).
    pub fn beam_splitters(&self) -> usize {
        2 * self.mzis()
    }
}

/// Component counts for a full photonic network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentCensus {
    /// Per-layer breakdown.
    pub layers: Vec<LayerCensus>,
}

impl ComponentCensus {
    /// Counts every component of a photonic network.
    pub fn of(network: &PhotonicNetwork) -> Self {
        let layers = network
            .layers()
            .iter()
            .enumerate()
            .map(|(i, l)| LayerCensus {
                layer: i,
                out_dim: l.intended().rows(),
                in_dim: l.intended().cols(),
                u_mzis: l.u_mesh().n_mzis(),
                v_mzis: l.v_mesh().n_mzis(),
                sigma_mzis: l.sigma().n_mzis(),
            })
            .collect();
        Self { layers }
    }

    /// Total MZIs in the network.
    pub fn total_mzis(&self) -> usize {
        self.layers.iter().map(|l| l.mzis()).sum()
    }

    /// Total tunable phase shifters — the paper's headline 1374.
    pub fn total_phase_shifters(&self) -> usize {
        self.layers.iter().map(|l| l.phase_shifters()).sum()
    }

    /// Total beam splitters.
    pub fn total_beam_splitters(&self) -> usize {
        self.layers.iter().map(|l| l.beam_splitters()).sum()
    }
}

impl fmt::Display for ComponentCensus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<6} {:>7} {:>8} {:>8} {:>7} {:>6} {:>6}",
            "layer", "shape", "U MZIs", "VH MZIs", "Σ MZIs", "MZIs", "PhS"
        )?;
        for l in &self.layers {
            writeln!(
                f,
                "{:<6} {:>7} {:>8} {:>8} {:>7} {:>6} {:>6}",
                l.layer,
                format!("{}x{}", l.out_dim, l.in_dim),
                l.u_mzis,
                l.v_mzis,
                l.sigma_mzis,
                l.mzis(),
                l.phase_shifters()
            )?;
        }
        writeln!(
            f,
            "{:<6} {:>7} {:>8} {:>8} {:>7} {:>6} {:>6}",
            "total",
            "",
            "",
            "",
            "",
            self.total_mzis(),
            self.total_phase_shifters()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::MeshTopology;
    use spnn_neural::ComplexNetwork;

    #[test]
    fn paper_network_has_687_mzis_and_1374_phase_shifters() {
        // The headline check: 16 → 16 → 16 → 10 network.
        let sw = ComplexNetwork::new(&[16, 16, 16, 10], 71);
        let hw = PhotonicNetwork::from_network(&sw, MeshTopology::Clements, None).unwrap();
        let census = ComponentCensus::of(&hw);
        assert_eq!(census.total_mzis(), 687);
        assert_eq!(census.total_phase_shifters(), 1374);
        assert_eq!(census.total_beam_splitters(), 1374);
        // Per-layer breakdown from DESIGN.md.
        assert_eq!(census.layers[0].u_mzis, 120);
        assert_eq!(census.layers[0].v_mzis, 120);
        assert_eq!(census.layers[0].sigma_mzis, 16);
        assert_eq!(census.layers[2].u_mzis, 45); // 10×10 mesh
        assert_eq!(census.layers[2].v_mzis, 120); // 16×16 mesh
        assert_eq!(census.layers[2].sigma_mzis, 10);
    }

    #[test]
    fn census_display_contains_totals() {
        let sw = ComplexNetwork::new(&[4, 3], 72);
        let hw = PhotonicNetwork::from_network(&sw, MeshTopology::Clements, None).unwrap();
        let census = ComponentCensus::of(&hw);
        let text = census.to_string();
        assert!(text.contains("total"));
        assert!(text.contains("4x3") || text.contains("3x4"));
    }

    #[test]
    fn reck_census_matches_clements_counts() {
        // Same MZI count, different topology.
        let sw = ComplexNetwork::new(&[6, 5], 73);
        let c = ComponentCensus::of(
            &PhotonicNetwork::from_network(&sw, MeshTopology::Clements, None).unwrap(),
        );
        let r = ComponentCensus::of(
            &PhotonicNetwork::from_network(&sw, MeshTopology::Reck, None).unwrap(),
        );
        assert_eq!(c.total_mzis(), r.total_mzis());
    }
}
