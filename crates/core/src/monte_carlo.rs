//! Deterministic, multi-threaded Monte-Carlo accuracy estimation.
//!
//! The paper runs 1000 Monte-Carlo iterations per data point and justifies
//! the count with a 95 %-confidence margin-of-error argument (§III-D). Here
//! each iteration `k` draws its hardware realization from
//! `StdRng::seed_from_u64(splitmix64(seed ⊕ k))`, so the estimate is a pure
//! function of `(network, plan, effects, data, iterations, seed)` —
//! independent of the number of worker threads.
//!
//! Since the batched engine work, [`mc_accuracy`] evaluates each iteration
//! through the [`crate::batched::TestBatch`] split-plane kernels rather
//! than the historical per-sample `mul_vec` loop. The two paths are
//! bit-identical by construction (pinned by tests in [`crate::batched`]
//! and in `spnn-engine`), so this is purely a speed change — roughly 2×
//! per iteration at the paper's scale, see `BENCH_engine.json`.

use crate::batched::TestBatch;
use crate::network::PhotonicNetwork;
use crate::perturbation::{HardwareEffects, PerturbationPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spnn_linalg::C64;

/// Monte-Carlo accuracy estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct McResult {
    /// Mean accuracy over iterations, in `[0, 1]`.
    pub mean: f64,
    /// Sample standard deviation of the per-iteration accuracies.
    pub std_dev: f64,
    /// The raw per-iteration accuracies.
    pub samples: Vec<f64>,
}

impl McResult {
    /// Aggregates raw per-iteration accuracies.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = if samples.len() > 1 {
            samples.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        Self {
            mean,
            std_dev: var.sqrt(),
            samples,
        }
    }

    /// 95 % margin of error of the mean (`1.96·σ/√n`) — the paper's §III-D
    /// statistic ("maximum margin of error … is 6.27 %").
    pub fn margin_of_error_95(&self) -> f64 {
        1.96 * self.std_dev / (self.samples.len() as f64).sqrt()
    }
}

/// SplitMix64 — decorrelates per-iteration seeds.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The RNG seed of Monte-Carlo iteration `k` under base `seed`.
///
/// This is the seeding scheme of [`mc_accuracy`], exposed so external
/// drivers (the `spnn-engine` batched runner) can reproduce the exact
/// per-iteration realization stream: the estimate stays a pure function of
/// `(seed, k)` regardless of who schedules the iterations.
pub fn iteration_seed(seed: u64, k: usize) -> u64 {
    splitmix64(seed ^ (k as u64).wrapping_mul(0x9E3779B97F4A7C15))
}

/// The fully-seeded RNG of Monte-Carlo iteration `k` (see
/// [`iteration_seed`]).
pub fn iteration_rng(seed: u64, k: usize) -> StdRng {
    StdRng::seed_from_u64(iteration_seed(seed, k))
}

/// Estimates mean inference accuracy under a perturbation plan.
///
/// Work is split across up to [`std::thread::available_parallelism`] threads;
/// results are bit-identical for any thread count.
///
/// Each iteration realizes the hardware once and evaluates the whole test
/// set through the batched [`TestBatch`] path — bit-identical to (and
/// roughly twice as fast as) the historical per-sample loop, which remains
/// available as [`PhotonicNetwork::accuracy_with`].
///
/// # Panics
///
/// Panics if `iterations == 0`, `features.len() != labels.len()`, or the
/// test set is empty.
pub fn mc_accuracy(
    network: &PhotonicNetwork,
    plan: &PerturbationPlan,
    effects: &HardwareEffects,
    features: &[Vec<C64>],
    labels: &[usize],
    iterations: usize,
    seed: u64,
) -> McResult {
    assert!(iterations > 0, "need at least one iteration");
    assert_eq!(features.len(), labels.len(), "features/labels mismatch");
    let batch = TestBatch::new(features, labels);

    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(iterations)
        .max(1);

    let mut samples = vec![0.0f64; iterations];
    if n_threads == 1 {
        for (k, slot) in samples.iter_mut().enumerate() {
            *slot = one_iteration(network, plan, effects, &batch, seed, k);
        }
    } else {
        let chunk = iterations.div_ceil(n_threads);
        std::thread::scope(|scope| {
            for (t, out_chunk) in samples.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                let batch = &batch;
                scope.spawn(move || {
                    for (off, slot) in out_chunk.iter_mut().enumerate() {
                        *slot = one_iteration(network, plan, effects, batch, seed, start + off);
                    }
                });
            }
        });
    }
    McResult::from_samples(samples)
}

fn one_iteration(
    network: &PhotonicNetwork,
    plan: &PerturbationPlan,
    effects: &HardwareEffects,
    batch: &TestBatch,
    seed: u64,
    k: usize,
) -> f64 {
    let mut rng = iteration_rng(seed, k);
    let matrices = network.realize(plan, effects, &mut rng);
    batch.accuracy_with(network, &matrices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::MeshTopology;
    use spnn_neural::ComplexNetwork;
    use spnn_photonics::UncertaintySpec;

    fn setup() -> (PhotonicNetwork, Vec<Vec<C64>>, Vec<usize>) {
        let sw = ComplexNetwork::new(&[4, 4, 3], 31);
        let hw = PhotonicNetwork::from_network(&sw, MeshTopology::Clements, None).unwrap();
        // A tiny labelled set: label = predicted class of the ideal network,
        // so nominal accuracy is 1 by construction.
        let features: Vec<Vec<C64>> = (0..12)
            .map(|i| {
                (0..4)
                    .map(|j| {
                        C64::new(
                            ((i * 7 + j * 3) % 5) as f64 * 0.2,
                            ((i + j) % 3) as f64 * 0.3,
                        )
                    })
                    .collect()
            })
            .collect();
        let ideal = hw.ideal_matrices();
        let labels: Vec<usize> = features
            .iter()
            .map(|f| hw.classify_with(&ideal, f))
            .collect();
        (hw, features, labels)
    }

    #[test]
    fn zero_uncertainty_keeps_nominal_accuracy() {
        let (hw, xs, ys) = setup();
        let r = mc_accuracy(
            &hw,
            &PerturbationPlan::None,
            &HardwareEffects::default(),
            &xs,
            &ys,
            3,
            1,
        );
        assert!((r.mean - 1.0).abs() < 1e-12);
        assert!(r.std_dev < 1e-12);
    }

    #[test]
    fn deterministic_across_runs() {
        let (hw, xs, ys) = setup();
        let plan = PerturbationPlan::global(UncertaintySpec::both(0.05));
        let fx = HardwareEffects::default();
        let a = mc_accuracy(&hw, &plan, &fx, &xs, &ys, 8, 42);
        let b = mc_accuracy(&hw, &plan, &fx, &xs, &ys, 8, 42);
        assert_eq!(a.samples, b.samples);
        let c = mc_accuracy(&hw, &plan, &fx, &xs, &ys, 8, 43);
        assert_ne!(a.samples, c.samples);
    }

    #[test]
    fn large_uncertainty_degrades_accuracy() {
        let (hw, xs, ys) = setup();
        let plan = PerturbationPlan::global(UncertaintySpec::both(0.15));
        let r = mc_accuracy(&hw, &plan, &HardwareEffects::default(), &xs, &ys, 10, 7);
        assert!(r.mean < 1.0, "σ = 0.15 should break a few predictions");
    }

    #[test]
    fn batched_delegation_matches_the_per_sample_loop_bitwise() {
        // mc_accuracy now runs through TestBatch internally; the historical
        // contract — each sample equals a per-sample `accuracy_with` pass of
        // iteration k's realization — must survive bit for bit.
        let (hw, xs, ys) = setup();
        let plan = PerturbationPlan::global(UncertaintySpec::both(0.07));
        let fx = HardwareEffects::default();
        let r = mc_accuracy(&hw, &plan, &fx, &xs, &ys, 6, 11);
        for (k, &s) in r.samples.iter().enumerate() {
            let m = hw.realize(&plan, &fx, &mut iteration_rng(11, k));
            let reference = hw.accuracy_with(&m, &xs, &ys);
            assert_eq!(s.to_bits(), reference.to_bits(), "iteration {k}");
        }
    }

    #[test]
    fn result_statistics() {
        let r = McResult::from_samples(vec![0.5, 0.7, 0.9]);
        assert!((r.mean - 0.7).abs() < 1e-12);
        assert!((r.std_dev - 0.2).abs() < 1e-12);
        assert!(r.margin_of_error_95() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_panic() {
        let _ = McResult::from_samples(vec![]);
    }

    #[test]
    fn splitmix_decorrelates_consecutive_seeds() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 10, "consecutive seeds too similar");
    }
}
