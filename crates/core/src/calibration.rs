//! Post-fabrication calibration — re-tuning phase shifters to compensate
//! fabricated (fixed) beam-splitter errors.
//!
//! The paper's related-work section (§II-C) describes the compensation
//! approach of Zhu et al. (ref. \[9\]) and notes its cost: "the required
//! hardware calibration necessitates the tuning of each MZI in the
//! network, and this step becomes increasingly complex as the network
//! scales up". This module implements exactly that per-MZI tuning loop so
//! the trade-off can be quantified:
//!
//! - Beam splitters are **passive**: after fabrication their `r` is fixed
//!   and unknown-but-measurable; phase shifters remain tunable.
//! - [`calibrate_mesh`] runs cyclic coordinate descent over every MZI's
//!   `(θ, φ)` to minimize the Frobenius distance between the realized and
//!   intended mesh matrix, holding the faulty splitters fixed.
//! - [`CalibrationOutcome`] reports the RVD before/after and the number of
//!   phase updates — the "complexity" the paper warns about.
//!
//! A perfectly calibrated mesh is generally *not* reachable: with faulty
//! splitters the per-MZI transfer matrices span a slightly different
//! manifold, so calibration reduces but does not erase the error — which
//! is the paper's argument for design-time criticality analysis.

use crate::network::PhotonicNetwork;
use crate::perturbation::{HardwareEffects, PerturbationPlan};
use rand::Rng;
use spnn_linalg::CMatrix;
use spnn_mesh::rvd::rvd;
use spnn_mesh::UnitaryMesh;
use spnn_photonics::{BeamSplitter, Mzi};

/// The fabricated (fixed) imperfections of one mesh: per-MZI splitter pair
/// plus the phase errors present before calibration.
#[derive(Debug, Clone)]
pub struct FabricatedMesh {
    /// The design (intended phases and layout).
    pub design: UnitaryMesh,
    /// Fixed splitters per MZI `(input side, output side)`.
    pub splitters: Vec<(BeamSplitter, BeamSplitter)>,
    /// Current phase settings per MZI `(θ, φ)` — tunable.
    pub phases: Vec<(f64, f64)>,
}

impl FabricatedMesh {
    /// "Fabricates" a mesh: draws fixed splitter errors and initial phase
    /// errors from `spec`, leaving the phases tunable afterwards.
    pub fn fabricate<R: Rng + ?Sized>(
        design: &UnitaryMesh,
        spec: &spnn_photonics::UncertaintySpec,
        rng: &mut R,
    ) -> Self {
        let mut splitters = Vec::with_capacity(design.n_mzis());
        let mut phases = Vec::with_capacity(design.n_mzis());
        for site in design.mzis() {
            let noisy = spec.perturb_mzi(&site.device(), rng);
            splitters.push((noisy.splitter_in(), noisy.splitter_out()));
            phases.push((noisy.theta(), noisy.phi()));
        }
        Self {
            design: design.clone(),
            splitters,
            phases,
        }
    }

    /// The realized matrix with the current phase settings and the fixed
    /// faulty splitters.
    pub fn matrix(&self) -> CMatrix {
        self.design.matrix_with(|i, _| {
            let (theta, phi) = self.phases[i];
            let (bs_in, bs_out) = self.splitters[i];
            Mzi::with_splitters(theta, phi, bs_in, bs_out)
        })
    }

    /// Squared Frobenius distance to the intended matrix — the calibration
    /// objective.
    pub fn objective(&self, intended: &CMatrix) -> f64 {
        let d = &self.matrix() - intended;
        let n = d.frobenius_norm();
        n * n
    }
}

/// Result of a calibration run.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationOutcome {
    /// RVD against the intended matrix before calibration.
    pub rvd_before: f64,
    /// RVD after calibration.
    pub rvd_after: f64,
    /// Number of scalar phase updates performed (2 per MZI per sweep) —
    /// the tuning complexity the paper warns grows with network size.
    pub phase_updates: usize,
    /// Number of coordinate-descent sweeps executed.
    pub sweeps: usize,
}

impl CalibrationOutcome {
    /// Fraction of the RVD removed by calibration, in `[0, 1]`.
    pub fn recovery(&self) -> f64 {
        if self.rvd_before <= 0.0 {
            return 1.0;
        }
        ((self.rvd_before - self.rvd_after) / self.rvd_before).clamp(0.0, 1.0)
    }
}

/// Calibration hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationConfig {
    /// Maximum coordinate-descent sweeps over all MZIs.
    pub max_sweeps: usize,
    /// Stop when a full sweep improves the objective by less than this
    /// relative amount.
    pub tolerance: f64,
}

impl Default for CalibrationConfig {
    /// 150 sweeps reaches machine-precision recovery for phase-only errors
    /// on small meshes (coordinate descent converges linearly).
    fn default() -> Self {
        Self {
            max_sweeps: 150,
            tolerance: 1e-12,
        }
    }
}

/// Calibrates a fabricated mesh against its intended unitary by cyclic
/// coordinate descent on every `(θ, φ)`.
///
/// Each coordinate is minimized **exactly**: the mesh matrix is linear in
/// `e^{iθ}` (and in `e^{iφ}`) of any single MZI, so the Frobenius objective
/// restricted to one phase is a single harmonic `A + B·cosx + C·sinx`,
/// whose minimizer is `atan2(C, B) + π`. Three objective evaluations
/// identify `(A, B, C)`.
///
/// Returns the outcome; `fabricated.phases` holds the tuned settings.
pub fn calibrate_mesh(
    fabricated: &mut FabricatedMesh,
    intended: &CMatrix,
    config: &CalibrationConfig,
) -> CalibrationOutcome {
    let rvd_before = rvd(&fabricated.matrix(), intended);
    let mut best = fabricated.objective(intended);
    let mut phase_updates = 0;
    let mut sweeps = 0;

    for _ in 0..config.max_sweeps {
        sweeps += 1;
        let sweep_start = best;
        for i in 0..fabricated.phases.len() {
            for coord in 0..2 {
                let current = if coord == 0 {
                    fabricated.phases[i].0
                } else {
                    fabricated.phases[i].1
                };
                let eval = |fab: &mut FabricatedMesh, x: f64| -> f64 {
                    if coord == 0 {
                        fab.phases[i].0 = x;
                    } else {
                        fab.phases[i].1 = x;
                    }
                    fab.objective(intended)
                };
                // Sample the harmonic at 0, π/2, π.
                let f0 = eval(fabricated, 0.0);
                let f90 = eval(fabricated, std::f64::consts::FRAC_PI_2);
                let f180 = eval(fabricated, std::f64::consts::PI);
                let a = (f0 + f180) / 2.0;
                let b = (f0 - f180) / 2.0;
                let c = f90 - a;
                let tuned = c.atan2(b) + std::f64::consts::PI;
                let tuned_obj = eval(fabricated, tuned);
                if tuned_obj < best - 1e-15 {
                    best = tuned_obj;
                    phase_updates += 1;
                } else {
                    let _ = eval(fabricated, current);
                }
            }
        }
        if sweep_start - best < config.tolerance * sweep_start.max(1e-30) {
            break;
        }
    }

    CalibrationOutcome {
        rvd_before,
        rvd_after: rvd(&fabricated.matrix(), intended),
        phase_updates,
        sweeps,
    }
}

/// End-to-end accuracy recovery study on a photonic network: fabricate
/// every mesh with `spec`, calibrate each against its intended unitary,
/// and report accuracy (before, after, nominal).
///
/// Σ lines are calibrated implicitly: their θ/φ re-tuning is part of the
/// same loop (they are MZIs with one port terminated — here approximated
/// by calibrating the unitary meshes and re-tuning Σ phases analytically).
pub fn calibrate_network_accuracy<R: Rng + ?Sized>(
    network: &PhotonicNetwork,
    spec: &spnn_photonics::UncertaintySpec,
    features: &[Vec<spnn_linalg::C64>],
    labels: &[usize],
    config: &CalibrationConfig,
    rng: &mut R,
) -> (f64, f64, f64) {
    // Before: one random realization, no calibration.
    let plan = PerturbationPlan::global(*spec);
    let fx = HardwareEffects::default();
    // Use a clone of rng stream for the "before" draw so that fabricate()
    // below sees the same errors in expectation (not identical draws —
    // this is a statistical comparison).
    let realized = network.realize(&plan, &fx, rng);
    let before = network.accuracy_with(&realized, features, labels);

    // After: fabricate + calibrate each mesh, rebuild layer matrices.
    let mut matrices = Vec::with_capacity(network.n_layers());
    for layer in network.layers() {
        let mut v_fab = FabricatedMesh::fabricate(layer.v_mesh(), spec, rng);
        let v_intended = layer.v_mesh().matrix();
        calibrate_mesh(&mut v_fab, &v_intended, config);

        let mut u_fab = FabricatedMesh::fabricate(layer.u_mesh(), spec, rng);
        let u_intended = layer.u_mesh().matrix();
        calibrate_mesh(&mut u_fab, &u_intended, config);

        // Σ: splitter errors stay, but θ/φ re-tuned to best-approximate the
        // target amplitude on the bar port (scalar calibration per MZI).
        let sigma = layer.sigma().matrix_with(|_i, dev| {
            let noisy = spec.perturb_mzi(&dev, rng);
            // Re-tune θ so that |T11| matches the design value, keeping the
            // fabricated splitters: |T11| target = sin(θ_design/2).
            let target = (dev.theta() / 2.0).sin();
            let mut best = noisy;
            let mut best_err = f64::INFINITY;
            for k in 0..=64 {
                let theta = std::f64::consts::PI * k as f64 / 64.0;
                let cand = Mzi::with_splitters(
                    theta,
                    dev.phi(),
                    noisy.splitter_in(),
                    noisy.splitter_out(),
                );
                let err = (cand.bar_amplitude().abs() - target).abs();
                if err < best_err {
                    best_err = err;
                    best = cand;
                }
            }
            // Re-tune φ to cancel the bar-path phase.
            let residual = best.bar_amplitude().arg();
            Mzi::with_splitters(
                best.theta(),
                best.phi() - residual,
                best.splitter_in(),
                best.splitter_out(),
            )
        });

        matrices.push(u_fab.matrix().mul(&sigma).mul(&v_fab.matrix()));
    }
    let after = network.accuracy_with(&matrices, features, labels);
    let nominal = network.ideal_accuracy(features, labels);
    (before, after, nominal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spnn_linalg::random::haar_unitary;
    use spnn_mesh::clements;
    use spnn_photonics::UncertaintySpec;

    fn design(n: usize, seed: u64) -> (UnitaryMesh, CMatrix) {
        let u = haar_unitary(n, &mut StdRng::seed_from_u64(seed));
        let mesh = clements::decompose(&u).unwrap();
        (mesh, u)
    }

    #[test]
    fn harmonic_coordinate_step_finds_exact_minimum() {
        // The per-coordinate objective is A + B·cosx + C·sinx; verify the
        // closed-form minimizer used by calibrate_mesh on a known harmonic.
        let (a, b, c) = (2.0, 0.7, -1.1);
        let f = |x: f64| a + b * x.cos() + c * x.sin();
        let f0 = f(0.0);
        let f90 = f(std::f64::consts::FRAC_PI_2);
        let f180 = f(std::f64::consts::PI);
        let ae = (f0 + f180) / 2.0;
        let be = (f0 - f180) / 2.0;
        let ce = f90 - ae;
        let x_star = ce.atan2(be) + std::f64::consts::PI;
        let min_val = a - (b * b + c * c).sqrt();
        assert!((f(x_star) - min_val).abs() < 1e-12);
    }

    #[test]
    fn fabricated_mesh_with_no_errors_is_exact() {
        let (mesh, u) = design(4, 81);
        let mut rng = StdRng::seed_from_u64(1);
        let fab = FabricatedMesh::fabricate(&mesh, &UncertaintySpec::none(), &mut rng);
        assert!(fab.matrix().approx_eq(&u, 1e-9));
        assert!(fab.objective(&u) < 1e-18);
    }

    #[test]
    fn phase_only_errors_calibrate_to_near_zero() {
        // With ideal splitters, re-tuning phases can fully recover the mesh.
        let (mesh, u) = design(4, 82);
        let mut rng = StdRng::seed_from_u64(2);
        let spec = UncertaintySpec::phase_shifters_only(0.05);
        let mut fab = FabricatedMesh::fabricate(&mesh, &spec, &mut rng);
        let outcome = calibrate_mesh(&mut fab, &u, &CalibrationConfig::default());
        assert!(outcome.rvd_before > 0.1, "fabrication should hurt first");
        assert!(
            outcome.rvd_after < 0.05 * outcome.rvd_before,
            "phase errors are fully tunable: {} → {}",
            outcome.rvd_before,
            outcome.rvd_after
        );
    }

    #[test]
    fn splitter_errors_calibrate_partially() {
        let (mesh, u) = design(4, 83);
        let mut rng = StdRng::seed_from_u64(3);
        let spec = UncertaintySpec::both(0.05);
        let mut fab = FabricatedMesh::fabricate(&mesh, &spec, &mut rng);
        let outcome = calibrate_mesh(&mut fab, &u, &CalibrationConfig::default());
        assert!(
            outcome.rvd_after < 0.5 * outcome.rvd_before,
            "calibration should remove most error: {} → {}",
            outcome.rvd_before,
            outcome.rvd_after
        );
        assert!(outcome.recovery() > 0.5);
        assert!(outcome.phase_updates > 0);
    }

    #[test]
    fn calibration_never_worsens() {
        for seed in 0..5 {
            let (mesh, u) = design(3, 90 + seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let spec = UncertaintySpec::both(0.1);
            let mut fab = FabricatedMesh::fabricate(&mesh, &spec, &mut rng);
            let outcome = calibrate_mesh(&mut fab, &u, &CalibrationConfig::default());
            assert!(
                outcome.rvd_after <= outcome.rvd_before + 1e-9,
                "seed {seed}: {} → {}",
                outcome.rvd_before,
                outcome.rvd_after
            );
        }
    }

    #[test]
    fn outcome_recovery_bounds() {
        let o = CalibrationOutcome {
            rvd_before: 2.0,
            rvd_after: 0.5,
            phase_updates: 10,
            sweeps: 2,
        };
        assert!((o.recovery() - 0.75).abs() < 1e-12);
        let perfect = CalibrationOutcome {
            rvd_before: 0.0,
            rvd_after: 0.0,
            phase_updates: 0,
            sweeps: 1,
        };
        assert_eq!(perfect.recovery(), 1.0);
    }

    #[test]
    fn network_level_calibration_recovers_accuracy() {
        use crate::network::{MeshTopology, PhotonicNetwork};
        use spnn_linalg::C64;
        use spnn_neural::ComplexNetwork;

        let sw = ComplexNetwork::new(&[4, 4, 3], 91);
        let hw = PhotonicNetwork::from_network(&sw, MeshTopology::Clements, None).unwrap();
        let features: Vec<Vec<C64>> = (0..15)
            .map(|i| {
                (0..4)
                    .map(|j| {
                        C64::new(
                            ((i * 5 + j) % 7) as f64 * 0.15,
                            ((i + j * 2) % 5) as f64 * 0.1,
                        )
                    })
                    .collect()
            })
            .collect();
        let ideal = hw.ideal_matrices();
        let labels: Vec<usize> = features
            .iter()
            .map(|f| hw.classify_with(&ideal, f))
            .collect();

        let mut rng = StdRng::seed_from_u64(4);
        let spec = UncertaintySpec::both(0.05);
        let (before, after, nominal) = calibrate_network_accuracy(
            &hw,
            &spec,
            &features,
            &labels,
            &CalibrationConfig {
                max_sweeps: 40,
                ..CalibrationConfig::default()
            },
            &mut rng,
        );
        assert!((nominal - 1.0).abs() < 1e-12);
        assert!(
            after >= before,
            "calibration should not hurt: before {before}, after {after}"
        );
        assert!(
            after > 0.85,
            "calibrated accuracy should approach nominal, got {after}"
        );
    }
}
