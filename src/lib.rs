//! `spnn` — a full-system reproduction of *"Modeling Silicon-Photonic
//! Neural Networks under Uncertainties"* (Banerjee, Nikdast, Chakrabarty;
//! DATE 2021, arXiv:2012.10594).
//!
//! This façade crate re-exports the workspace so downstream users can
//! depend on one crate:
//!
//! - [`linalg`] — complex scalars/matrices, QR, SVD, FFT, random unitaries.
//! - [`photonics`] — phase shifters, beam splitters, MZIs, uncertainty and
//!   thermal-crosstalk models (paper Eqs. 1–5).
//! - [`mesh`] — Clements/Reck mesh synthesis, Σ lines, RVD, EXP 2 zones.
//! - [`neural`] — complex-valued networks with Wirtinger backprop.
//! - [`dataset`] — synthetic MNIST substitute + shifted-FFT features.
//! - [`core`] — the photonic network simulator, Monte-Carlo engine and the
//!   paper's experiments (EXP 1 / EXP 2 / criticality).
//! - [`engine`] — the batched, adaptive Monte-Carlo simulation engine with
//!   the declarative scenario-spec API and the `spnn` CLI.
//!
//! # Quickstart
//!
//! ```
//! use spnn::prelude::*;
//!
//! // 1. Data: synthetic MNIST-style digits → 16 complex FFT features.
//! let data = SpnnDataset::generate(&DatasetConfig {
//!     n_train: 300, n_test: 60, crop: 4, seed: 7,
//! });
//!
//! // 2. Software training (scaled down for the doctest).
//! let mut net = ComplexNetwork::new(&[16, 16, 16, 10], 1);
//! let cfg = TrainConfig { epochs: 5, ..TrainConfig::default() };
//! train(&mut net, &data.train_features, &data.train_labels, &cfg);
//!
//! // 3. Photonic mapping: SVD → Clements meshes + Σ lines.
//! let hw = PhotonicNetwork::from_network(&net, MeshTopology::Clements, None)?;
//!
//! // 4. Monte-Carlo accuracy under the paper's σ = 0.05 uncertainty.
//! let plan = PerturbationPlan::global(UncertaintySpec::both(0.05));
//! let result = mc_accuracy(
//!     &hw, &plan, &HardwareEffects::default(),
//!     &data.test_features, &data.test_labels, 5, 99,
//! );
//! assert!(result.mean <= 1.0);
//! # Ok::<(), spnn::core::network::SpnnError>(())
//! ```

#![warn(missing_docs)]

pub use spnn_core as core;
pub use spnn_dataset as dataset;
pub use spnn_engine as engine;
pub use spnn_linalg as linalg;
pub use spnn_mesh as mesh;
pub use spnn_neural as neural;
pub use spnn_photonics as photonics;

/// Commonly used items, importable with `use spnn::prelude::*`.
pub mod prelude {
    pub use spnn_core::{
        mc_accuracy, ComponentCensus, HardwareEffects, McResult, MeshTopology, PerturbationPlan,
        PhotonicNetwork, SiteRef, Stage,
    };
    pub use spnn_dataset::{fft_features, DatasetConfig, GrayImage, ImageGenerator, SpnnDataset};
    pub use spnn_engine::{
        run_scenario, EngineConfig, EngineReport, RunScale, ScenarioSpec, TestBatch,
    };
    pub use spnn_linalg::{CMatrix, C64};
    pub use spnn_mesh::{clements, reck, DiagonalLine, UnitaryMesh, ZoneGrid};
    pub use spnn_neural::{train, ComplexNetwork, TrainConfig};
    pub use spnn_photonics::{BeamSplitter, Mzi, PerturbTarget, PhaseShifter, UncertaintySpec};
}
